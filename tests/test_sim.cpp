// Tests for the discrete-event engine, meters, pipes, servers, semaphores
// and testbed presets.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/meter.h"
#include "sim/pipe.h"
#include "sim/semaphore.h"
#include "sim/testbed.h"

namespace emlio::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(from_seconds(3), [&] { order.push_back(3); });
  eng.schedule(from_seconds(1), [&] { order.push_back(1); });
  eng.schedule(from_seconds(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), from_seconds(3));
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(from_seconds(1), [&, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsScheduleMoreEvents) {
  Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) eng.schedule(from_millis(1), chain);
  };
  eng.schedule(0, chain);
  eng.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(eng.now(), from_millis(99));
}

TEST(Engine, RejectsPastScheduling) {
  Engine eng;
  eng.schedule(from_seconds(1), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(0, [] {}), std::invalid_argument);
  EXPECT_THROW(eng.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule(from_seconds(1), [&] { ++fired; });
  eng.schedule(from_seconds(5), [&] { ++fired; });
  eng.run_until(from_seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), from_seconds(2));
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Meter, IntegratesBusyTime) {
  Engine eng;
  UtilizationMeter meter(eng, 1.0);
  eng.schedule(0, [&] { meter.begin_work(); });
  eng.schedule(from_seconds(2), [&] { meter.end_work(); });
  eng.schedule(from_seconds(4), [] {});
  eng.run();
  EXPECT_DOUBLE_EQ(meter.busy_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(meter.mean_utilization(0, from_seconds(4)), 0.5);
}

TEST(Meter, CapacityNormalizesParallelWork) {
  Engine eng;
  UtilizationMeter meter(eng, 4.0);
  eng.schedule(0, [&] { meter.begin_work(2.0); });  // 2 of 4 cores
  eng.schedule(from_seconds(1), [&] { meter.end_work(2.0); });
  eng.run();
  EXPECT_DOUBLE_EQ(meter.mean_utilization(0, from_seconds(1)), 0.5);
}

TEST(Meter, OversubscriptionClampsAtCapacity) {
  Engine eng;
  UtilizationMeter meter(eng, 2.0);
  eng.schedule(0, [&] { meter.begin_work(5.0); });  // 5 workers on 2 slots
  eng.schedule(from_seconds(1), [&] { meter.end_work(5.0); });
  eng.run();
  EXPECT_DOUBLE_EQ(meter.mean_utilization(0, from_seconds(1)), 1.0);
}

TEST(Meter, UtilizationAtPointInTime) {
  Engine eng;
  UtilizationMeter meter(eng, 1.0);
  eng.schedule(from_seconds(1), [&] { meter.begin_work(); });
  eng.schedule(from_seconds(3), [&] { meter.end_work(); });
  eng.run();
  EXPECT_DOUBLE_EQ(meter.utilization_at(from_seconds(0)), 0.0);
  EXPECT_DOUBLE_EQ(meter.utilization_at(from_seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(meter.utilization_at(from_seconds(4)), 0.0);
}

TEST(Meter, NegativeActiveThrows) {
  Engine eng;
  UtilizationMeter meter(eng, 1.0);
  EXPECT_THROW(meter.end_work(), std::logic_error);
}

TEST(Pipe, SerializesBackToBackTransfers) {
  Engine eng;
  Pipe pipe(eng, 100.0, 0);  // 100 B/s, no latency
  std::vector<double> completions;
  pipe.transfer(100, [&] { completions.push_back(to_seconds(eng.now())); });
  pipe.transfer(100, [&] { completions.push_back(to_seconds(eng.now())); });
  eng.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 1.0, 1e-9);
  EXPECT_NEAR(completions[1], 2.0, 1e-9);  // queued behind the first
}

TEST(Pipe, LatencyOverlapsAcrossTransfers) {
  Engine eng;
  Pipe pipe(eng, 1e9, from_seconds(1));  // fat pipe, 1 s propagation
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    pipe.transfer(1000, [&] { completions.push_back(to_seconds(eng.now())); });
  }
  eng.run();
  // All three arrive ≈ t=1: latency is pipelined, not serialized — the
  // property EMLIO exploits and per-request NFS cannot.
  for (double t : completions) EXPECT_NEAR(t, 1.0, 0.001);
}

TEST(Pipe, UnloadedTimeFormula) {
  Engine eng;
  Pipe pipe(eng, 1000.0, from_millis(5));
  EXPECT_EQ(pipe.unloaded_time(1000), from_seconds(1) + from_millis(5));
}

TEST(Pipe, TracksBytes) {
  Engine eng;
  Pipe pipe(eng, 1e6, 0);
  pipe.transfer(123, [] {});
  pipe.transfer(877, [] {});
  eng.run();
  EXPECT_EQ(pipe.bytes_transferred(), 1000u);
}

TEST(Server, LimitsConcurrency) {
  Engine eng;
  Server server(eng, 2);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    server.submit(from_seconds(1), [&] { completions.push_back(to_seconds(eng.now())); });
  }
  eng.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_NEAR(completions[0], 1.0, 1e-9);
  EXPECT_NEAR(completions[1], 1.0, 1e-9);
  EXPECT_NEAR(completions[2], 2.0, 1e-9);  // waited for a worker
  EXPECT_NEAR(completions[3], 2.0, 1e-9);
}

TEST(Server, MetersBusyWorkers) {
  Engine eng;
  UtilizationMeter meter(eng, 2.0);
  Server server(eng, 2, &meter);
  server.submit(from_seconds(1), [] {});
  server.submit(from_seconds(1), [] {});
  eng.run();
  EXPECT_DOUBLE_EQ(meter.mean_utilization(0, from_seconds(1)), 1.0);
}

TEST(Semaphore, GrantsImmediatelyWhenAvailable) {
  AsyncSemaphore sem(2);
  int granted = 0;
  sem.acquire([&] { ++granted; });
  sem.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, QueuesWaitersUntilRelease) {
  AsyncSemaphore sem(1);
  std::vector<int> order;
  sem.acquire([&] { order.push_back(1); });
  sem.acquire([&] { order.push_back(2); });
  sem.acquire([&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sem.waiting(), 2u);
  sem.release();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  sem.release();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
}

TEST(EnergyRecorder, MatchesAnalyticIntegral) {
  Engine eng;
  UtilizationMeter meter(eng, 1.0);
  eng.schedule(0, [&] { meter.begin_work(); });
  eng.schedule(from_seconds(5), [&] { meter.end_work(); });
  eng.schedule(from_seconds(10), [] {});
  eng.run();
  energy::PowerModel model{"gpu", 50, 250};
  double joules = EnergyRecorder::integrate(model, &meter, 0, from_seconds(10));
  // 5 s at 250 W + 5 s at 50 W = 1500 J.
  EXPECT_NEAR(joules, 1500.0, 1e-6);
}

TEST(EnergyRecorder, WritesMonitorCompatiblePoints) {
  Engine eng;
  UtilizationMeter meter(eng, 1.0);
  eng.schedule(0, [&] { meter.begin_work(); });
  eng.schedule(from_seconds(1), [&] { meter.end_work(); });
  eng.run();

  EnergyRecorder rec("simnode", from_millis(100));
  rec.add(energy::PowerModel{"cpu", 10, 100}, &meter, "cpu_energy");
  tsdb::Database db;
  rec.record(db, 0, from_seconds(1));
  tsdb::Query q;
  q.measurement = "energy";
  q.tag_filter["node_id"] = "simnode";
  EXPECT_EQ(db.select(q).size(), 10u);  // 1 s / 100 ms
  EXPECT_NEAR(db.sum(q, "cpu_energy"), 100.0, 1e-6);
}

TEST(Testbed, Table1Presets) {
  auto uc = presets::uc_compute();
  EXPECT_TRUE(uc.has_gpu());
  EXPECT_EQ(uc.cpu_threads, 48u);
  auto st = presets::uc_storage();
  EXPECT_FALSE(st.has_gpu());
  auto tacc = presets::tacc_compute();
  EXPECT_TRUE(tacc.has_gpu());
  EXPECT_LT(presets::tacc_compute().disk_bytes_per_sec, uc.disk_bytes_per_sec);  // HDD vs SSD
}

TEST(Testbed, RegimePresets) {
  EXPECT_TRUE(presets::local_disk().local_disk);
  EXPECT_DOUBLE_EQ(presets::lan_10ms().rtt_ms, 10.0);
  EXPECT_DOUBLE_EQ(presets::wan_30ms().rtt_ms, 30.0);
  EXPECT_EQ(presets::fig5_regimes().size(), 4u);
}

TEST(Testbed, DescribeMentionsHardware) {
  auto text = describe(presets::uc_compute());
  EXPECT_NE(text.find("gpu"), std::string::npos);
  EXPECT_NE(text.find("Gbps"), std::string::npos);
}

}  // namespace
}  // namespace emlio::sim
