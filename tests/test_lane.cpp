// Tests for the shared QoS lane layer (common/lane.h): Lane queue/counter
// semantics, token-bucket rate limiting, the WeightedCycle DWRR core, and
// the LaneScheduler's weighted-fair draining — including the randomized
// property test the ISSUE asks for (conservation, close semantics, weight
// shares within tolerance under skewed producers). Runs in the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "common/lane.h"

namespace emlio {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------ Lane<T>

TEST(Lane, PushPopCountsAndPeakDepth) {
  Lane<int> lane("l", 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(lane.push(i));
  EXPECT_EQ(lane.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = lane.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO
  }
  lane.close();
  EXPECT_FALSE(lane.pop().has_value());
  auto s = lane.stats();
  EXPECT_EQ(s.delivered_items, 4u);
  EXPECT_EQ(s.queue_peak_depth, 4u);
  EXPECT_EQ(s.enqueue_stalls, 0u);
  EXPECT_TRUE(s.closed);
}

TEST(Lane, FullLaneStallsProducerAndCountsOnce) {
  Lane<int> lane("l", 1);
  int v = 1;
  EXPECT_TRUE(lane.push(v));
  std::thread producer([&] {
    int w = 2;
    EXPECT_TRUE(lane.push(w));  // blocks until the pop below
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(lane.pop().value(), 1);
  producer.join();
  EXPECT_EQ(lane.pop().value(), 2);
  EXPECT_EQ(lane.enqueue_stalls(), 1u);
}

TEST(Lane, RejectedPushLeavesItemWithCaller) {
  Lane<std::vector<int>> lane("l", 2);
  lane.close();
  std::vector<int> item{1, 2, 3};
  EXPECT_FALSE(lane.push(item));
  EXPECT_EQ(item.size(), 3u);  // recoverable — BoundedQueue contract
  EXPECT_FALSE(lane.try_push(item));
  EXPECT_EQ(item.size(), 3u);
}

TEST(Lane, EmptyPopCountsDequeueStall) {
  Lane<int> lane("l", 4);
  std::thread consumer([&] { EXPECT_FALSE(lane.pop().has_value()); });
  std::this_thread::sleep_for(20ms);
  lane.close();
  consumer.join();
  EXPECT_EQ(lane.dequeue_stalls(), 1u);
}

TEST(Lane, RateLimitSpacesDeliveries) {
  // 20 items/sec, burst 1 — after the first (burst) token, ~50 ms per item.
  LaneQos qos;
  qos.rate_per_sec = 20;
  Lane<int> lane("l", 16, qos);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(lane.push(i));
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(lane.pop().has_value());
  auto elapsed = std::chrono::steady_clock::now() - t0;
  // 3 tokens must mature after the burst: >= ~150 ms (generous lower bound
  // to stay robust on loaded CI hosts).
  EXPECT_GE(elapsed, 100ms);
}

TEST(Lane, CloseDrainsWithoutRateLimit) {
  LaneQos qos;
  qos.rate_per_sec = 1;  // 1/sec — unthrottled drain or this test times out
  Lane<int> lane("l", 16, qos);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(lane.push(i));
  lane.close();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(lane.pop().has_value());
  EXPECT_FALSE(lane.pop().has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 2s);
}

// ------------------------------------------------------------ WeightedCycle

TEST(WeightedCycle, BackloggedSharesFollowWeights) {
  WeightedCycle cycle;
  cycle.add(1);
  cycle.add(4);
  cycle.add(2);
  std::map<std::size_t, int> served;
  for (int i = 0; i < 7000; ++i) {
    std::size_t s = cycle.pick([](std::size_t) { return true; });  // all backlogged
    ASSERT_NE(s, WeightedCycle::npos);
    ++served[s];
  }
  // Shares converge to 1/7, 4/7, 2/7 — allow 5% absolute tolerance.
  EXPECT_NEAR(served[0] / 7000.0, 1.0 / 7.0, 0.05);
  EXPECT_NEAR(served[1] / 7000.0, 4.0 / 7.0, 0.05);
  EXPECT_NEAR(served[2] / 7000.0, 2.0 / 7.0, 0.05);
}

TEST(WeightedCycle, IdleSlotForfeitsItsDeficit) {
  WeightedCycle cycle;
  cycle.add(8);
  cycle.add(1);
  // Slot 0 idles for a long stretch: slot 1 gets every pick.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cycle.pick([](std::size_t slot) { return slot == 1; }), 1u);
  }
  // Slot 0 returns: it must NOT have banked 100 picks worth of credit —
  // its burst is bounded by ~2× its weight before slot 1 is served again.
  int consecutive = 0;
  while (cycle.pick([](std::size_t) { return true; }) == 0u) ++consecutive;
  EXPECT_LE(consecutive, 16);
}

TEST(WeightedCycle, NothingReadyReturnsNpos) {
  WeightedCycle cycle;
  cycle.add(1);
  cycle.add(1);
  EXPECT_EQ(cycle.pick([](std::size_t) { return false; }), WeightedCycle::npos);
}

// ------------------------------------------------------------ LaneScheduler

TEST(LaneScheduler, DrainsEverythingThenNullopt) {
  LaneScheduler<int> sched;
  auto a = sched.add_lane("a", 8);
  auto b = sched.add_lane("b", 8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(a->push(i));
    EXPECT_TRUE(b->push(100 + i));
  }
  sched.close_all();
  int count = 0;
  while (auto item = sched.pop()) ++count;
  EXPECT_EQ(count, 10);
}

TEST(LaneScheduler, PerLaneOrderIsFifoAtEveryWeight) {
  LaneScheduler<int> sched;
  auto a = sched.add_lane("a", 64, LaneQos{LaneClass::kInteractive, 7, 0});
  auto b = sched.add_lane("b", 64, LaneQos{LaneClass::kBulk, 1, 0});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(a->push(i));
    EXPECT_TRUE(b->push(i));
  }
  sched.close_all();
  std::vector<int> got_a, got_b;
  while (auto item = sched.pop()) {
    (item->lane_index == 0 ? got_a : got_b).push_back(item->value);
  }
  ASSERT_EQ(got_a.size(), 50u);
  ASSERT_EQ(got_b.size(), 50u);
  // The scheduler only interleaves lanes; within a lane, arrival order is
  // delivery order regardless of weight.
  EXPECT_TRUE(std::is_sorted(got_a.begin(), got_a.end()));
  EXPECT_TRUE(std::is_sorted(got_b.begin(), got_b.end()));
}

TEST(LaneScheduler, BackloggedLanesSplitServiceByWeight) {
  // Top both lanes up before every pop so each pick sees a true backlog —
  // live producer threads can't keep a 4×-faster-draining lane full, which
  // would measure producer throughput instead of the DWRR split.
  LaneScheduler<int> sched;
  auto heavy = sched.add_lane("heavy", 8, LaneQos{LaneClass::kInteractive, 4, 0});
  auto light = sched.add_lane("light", 8, LaneQos{LaneClass::kBulk, 1, 0});
  int heavy_served = 0;
  constexpr int kPops = 1000;
  for (int i = 0; i < kPops; ++i) {
    while (heavy->size() < 4) ASSERT_TRUE(heavy->push(i));
    while (light->size() < 4) ASSERT_TRUE(light->push(i));
    auto item = sched.pop();
    ASSERT_TRUE(item.has_value());
    if (item->lane_index == 0) ++heavy_served;
  }
  sched.close_all();
  while (sched.pop()) {
  }
  // Weight 4 vs 1 → expected share 4/5 = 0.8.
  EXPECT_NEAR(heavy_served / static_cast<double>(kPops), 0.8, 0.05);
}

TEST(LaneScheduler, ThrottledLaneDoesNotBlockOthers) {
  LaneScheduler<int> sched;
  auto throttled = sched.add_lane("slow", 8, LaneQos{LaneClass::kBulk, 1, 1});  // 1/sec
  auto free_lane = sched.add_lane("fast", 8, LaneQos{LaneClass::kInteractive, 1, 0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(throttled->push(i));
    EXPECT_TRUE(free_lane->push(100 + i));
  }
  // The free lane's 4 items (and the throttled lane's burst token) must all
  // arrive promptly — a blocked scheduler would stall them behind the 1/sec.
  auto t0 = std::chrono::steady_clock::now();
  int free_got = 0;
  while (free_got < 4) {
    auto item = sched.pop();
    ASSERT_TRUE(item.has_value());
    if (item->lane_index == 1) ++free_got;
    ASSERT_LT(std::chrono::steady_clock::now() - t0, 5s);
  }
  sched.close_all();
  while (sched.pop()) {
  }
}

// The randomized property test: skewed concurrent producers, random weights
// and depths; every pushed item is delivered exactly once, per-lane FIFO
// order holds, and close semantics drain the remainder.
TEST(LaneScheduler, RandomizedConservationAndOrder) {
  std::mt19937 rng(20250808);
  for (int round = 0; round < 5; ++round) {
    std::uniform_int_distribution<int> lanes_dist(2, 5);
    std::uniform_int_distribution<int> weight_dist(1, 8);
    std::uniform_int_distribution<int> depth_dist(1, 16);
    std::uniform_int_distribution<int> count_dist(0, 400);
    const int nlanes = lanes_dist(rng);

    LaneScheduler<std::pair<int, int>> sched;  // {lane, seq}
    std::vector<int> counts;
    for (int l = 0; l < nlanes; ++l) {
      LaneQos qos;
      qos.weight = static_cast<std::uint32_t>(weight_dist(rng));
      std::string lane_name = "l";
      lane_name += std::to_string(l);  // two steps: "l" + to_string trips GCC 12's -Wrestrict
      sched.add_lane(lane_name, static_cast<std::size_t>(depth_dist(rng)), qos);
      counts.push_back(count_dist(rng));  // skewed: some lanes push little
    }

    std::vector<std::thread> producers;
    for (int l = 0; l < nlanes; ++l) {
      producers.emplace_back([&, l] {
        for (int i = 0; i < counts[l]; ++i) {
          std::pair<int, int> item{l, i};
          ASSERT_TRUE(sched.lane(static_cast<std::size_t>(l)).push(item));
        }
        sched.lane(static_cast<std::size_t>(l)).close();
      });
    }

    std::vector<int> next_seq(static_cast<std::size_t>(nlanes), 0);
    int total = 0;
    while (auto item = sched.pop()) {
      auto [l, seq] = item->value;
      EXPECT_EQ(static_cast<std::size_t>(l), item->lane_index);
      EXPECT_EQ(seq, next_seq[static_cast<std::size_t>(l)]++);  // per-lane FIFO
      ++total;
    }
    for (auto& t : producers) t.join();
    int expected = 0;
    for (int c : counts) expected += c;
    EXPECT_EQ(total, expected);  // conservation: every push delivered once
    for (int l = 0; l < nlanes; ++l) {
      EXPECT_EQ(sched.lane(static_cast<std::size_t>(l)).delivered_items(),
                static_cast<std::uint64_t>(counts[static_cast<std::size_t>(l)]));
    }
  }
}

}  // namespace
}  // namespace emlio
