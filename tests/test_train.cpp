// Tests for model profiles, the loss model, DDP cost model and the trainer.
#include <gtest/gtest.h>

#include "msgpack/batch_codec.h"
#include "train/ddp.h"
#include "train/loss_model.h"
#include "train/model_profile.h"
#include "train/trainer.h"
#include "workload/sample_generator.h"

namespace emlio::train {
namespace {

TEST(ModelProfile, Resnet50CalibratedToDaliLocal) {
  auto m = presets::resnet50();
  // 100 000 samples must land near the paper's 151.7 s DALI-local epoch.
  double epoch_s = to_seconds(m.gpu_train_per_sample) * 100000.0 +
                   m.gpu_decode_per_byte_ns * 1e-9 * 1e10;
  EXPECT_NEAR(epoch_s, 151.7, 5.0);
}

TEST(ModelProfile, Vgg19SlightlyFasterPerEpochButHotter) {
  auto vgg = presets::vgg19();
  auto res = presets::resnet50();
  EXPECT_LT(vgg.gpu_train_per_sample, res.gpu_train_per_sample);
  EXPECT_GT(vgg.gpu_active_fraction, res.gpu_active_fraction);
  EXPECT_GT(vgg.gradient_bytes, res.gradient_bytes);
  EXPECT_GT(vgg.cpu_threads_during_train, res.cpu_threads_during_train);
}

TEST(ModelProfile, CostHelpersScale) {
  auto m = presets::tiny_test_model();
  EXPECT_EQ(m.train_batch(10), m.gpu_train_per_sample * 10);
  EXPECT_EQ(m.gpu_decode(1000), static_cast<Nanos>(m.gpu_decode_per_byte_ns * 1000));
  EXPECT_EQ(m.cpu_decode(1000), static_cast<Nanos>(m.cpu_decode_per_byte_ns * 1000));
}

TEST(LossModel, MonotoneDecayTowardFloor) {
  LossModel loss;
  EXPECT_DOUBLE_EQ(loss.expected(0), loss.initial_loss);
  double prev = loss.initial_loss;
  for (std::uint64_t n : {1000u, 5000u, 20000u, 50000u}) {
    double l = loss.expected(n);
    EXPECT_LT(l, prev);
    EXPECT_GT(l, loss.floor_loss);
    prev = l;
  }
}

TEST(LossModel, Figure11Calibration) {
  LossModel loss;  // defaults calibrated to Figure 11
  // Starts at 5.0, ends one 50 000-sample COCO epoch near 3.2.
  EXPECT_NEAR(loss.expected(0), 5.0, 0.01);
  EXPECT_NEAR(loss.expected(50000), 3.2, 0.1);
}

TEST(LossModel, ObservationNoiseBounded) {
  LossModel loss;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double observed = loss.observe(10000, rng);
    EXPECT_NEAR(observed, loss.expected(10000), 6 * loss.noise_stddev);
  }
}

TEST(MovingAverage, WindowedMean) {
  MovingAverage ma(3);
  EXPECT_DOUBLE_EQ(ma.add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.add(6.0), 4.5);
  EXPECT_DOUBLE_EQ(ma.add(9.0), 6.0);
  EXPECT_DOUBLE_EQ(ma.add(12.0), 9.0);  // 6,9,12
  EXPECT_TRUE(ma.full());
}

TEST(Ddp, AllreduceScalesWithNodesAndRtt) {
  DdpConfig cfg;
  cfg.nodes = 2;
  Nanos t2 = allreduce_time(cfg, 100'000'000, 10.0);
  cfg.nodes = 4;
  Nanos t4 = allreduce_time(cfg, 100'000'000, 10.0);
  EXPECT_GT(t4, t2);
  cfg.nodes = 1;
  EXPECT_EQ(allreduce_time(cfg, 100'000'000, 10.0), 0);
}

TEST(Ddp, RingBandwidthTerm) {
  DdpConfig cfg;
  cfg.nodes = 2;
  cfg.network_bytes_per_sec = 1.25e9;
  // 2·(N-1)·(grad/N)/bw = 100 MB / 1.25 GB/s = 80 ms at RTT 0.
  EXPECT_NEAR(to_seconds(allreduce_time(cfg, 100'000'000, 0.0)), 0.080, 0.001);
}

TEST(Ddp, ExposedSubtractsOverlap) {
  DdpConfig cfg;
  cfg.nodes = 2;
  Nanos full = allreduce_time(cfg, 100'000'000, 0.0);
  EXPECT_EQ(allreduce_exposed(cfg, 100'000'000, 0.0, full), 0);
  EXPECT_EQ(allreduce_exposed(cfg, 100'000'000, 0.0, full / 2), full - full / 2);
}

// ------------------------------------------------------------------ trainer

msgpack::WireBatch valid_batch(std::uint32_t epoch, std::uint64_t id,
                               const std::vector<std::uint64_t>& indices) {
  workload::SampleGenerator gen(workload::presets::tiny(64, 600));
  msgpack::WireBatch b;
  b.epoch = epoch;
  b.batch_id = id;
  for (auto i : indices) {
    msgpack::WireSample s;
    s.index = i;
    s.label = gen.label(i);
    s.bytes = gen.generate(i);
    b.samples.push_back(std::move(s));
  }
  return b;
}

TEST(Trainer, CleanEpochAccounting) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 8;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  trainer.train_step(valid_batch(0, 0, {0, 1, 2, 3}));
  trainer.train_step(valid_batch(0, 1, {4, 5, 6, 7}));
  auto result = trainer.end_epoch();
  EXPECT_EQ(result.samples, 8u);
  EXPECT_EQ(result.batches, 2u);
  EXPECT_EQ(result.duplicate_samples, 0u);
  EXPECT_EQ(result.corrupt_samples, 0u);
  EXPECT_TRUE(result.clean(8));
  EXPECT_GT(result.payload_bytes, 0u);
}

TEST(Trainer, DetectsDuplicates) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 8;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  trainer.train_step(valid_batch(0, 0, {0, 1, 2, 2}));
  auto result = trainer.end_epoch();
  EXPECT_EQ(result.duplicate_samples, 1u);
  EXPECT_FALSE(result.clean(8));
}

TEST(Trainer, DetectsCorruptPayload) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 4;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  auto batch = valid_batch(0, 0, {0, 1});
  auto corrupted = batch.samples[1].bytes.to_vector();
  corrupted[100] ^= 0xFF;
  batch.samples[1].bytes = std::move(corrupted);
  trainer.train_step(batch);
  EXPECT_EQ(trainer.end_epoch().corrupt_samples, 1u);
}

TEST(Trainer, DetectsOutOfRangeIndex) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 4;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  auto batch = valid_batch(0, 0, {10});  // index beyond expected range
  trainer.train_step(batch);
  EXPECT_EQ(trainer.end_epoch().corrupt_samples, 1u);
}

TEST(Trainer, CoverageShortfallNotClean) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 8;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  trainer.train_step(valid_batch(0, 0, {0, 1, 2}));
  auto result = trainer.end_epoch();
  EXPECT_FALSE(result.clean(8));
}

TEST(Trainer, LossDecreasesAcrossSteps) {
  TrainerOptions opt;
  opt.loss.noise_stddev = 0.0;  // deterministic
  Trainer trainer(opt);
  trainer.start_epoch(0);
  double first = trainer.train_step(valid_batch(0, 0, {0, 1, 2, 3}));
  for (int i = 1; i < 20; ++i) {
    trainer.train_step(valid_batch(0, static_cast<std::uint64_t>(i), {0, 1, 2, 3}));
  }
  double last = trainer.current_loss();
  EXPECT_LT(last, first);
}

TEST(Trainer, MultiEpochResetsCoverage) {
  TrainerOptions opt;
  opt.expected_samples_per_epoch = 4;
  Trainer trainer(opt);
  trainer.start_epoch(0);
  trainer.train_step(valid_batch(0, 0, {0, 1, 2, 3}));
  EXPECT_TRUE(trainer.end_epoch().clean(4));
  trainer.start_epoch(1);
  trainer.train_step(valid_batch(1, 0, {0, 1, 2, 3}));  // same indices, new epoch
  EXPECT_TRUE(trainer.end_epoch().clean(4));
  EXPECT_EQ(trainer.total_samples(), 8u);
}

}  // namespace
}  // namespace emlio::train
