// Unit tests for the ordered-reassembly primitives (common/sequencer.h):
// Sequencer<T> (dense-sequence reorder buffer) and EpochSequencer<T>
// (multi-sender end-of-epoch accounting). These carry the delivery-order
// guarantees of both the daemon's encode lanes and the receiver's decode
// pool, so their contracts are pinned down here independently of either.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/sequencer.h"

namespace emlio {
namespace {

// ----------------------------------------------------------------- Sequencer

TEST(Sequencer, InOrderPassthrough) {
  Sequencer<int> seq;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(seq.put(static_cast<std::uint64_t>(i), i * 10));
    ASSERT_NE(seq.front(), nullptr);
    EXPECT_EQ(seq.pop_front(), i * 10);
  }
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.out_of_order(), 0u);
  EXPECT_EQ(seq.next(), 5u);
}

TEST(Sequencer, ReordersArbitraryArrival) {
  Sequencer<int> seq;
  std::vector<std::uint64_t> arrival{3, 0, 4, 1, 2};
  std::vector<int> out;
  for (auto s : arrival) {
    seq.put(s, static_cast<int>(s));
    while (seq.front()) out.push_back(seq.pop_front());
  }
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(seq.empty());
}

TEST(Sequencer, HeadBlocksOnGap) {
  Sequencer<std::string> seq;
  EXPECT_FALSE(seq.put(1, "b"));  // parked behind the missing 0
  EXPECT_EQ(seq.front(), nullptr);
  EXPECT_EQ(seq.parked(), 1u);
  EXPECT_TRUE(seq.put(0, "a"));
  ASSERT_NE(seq.front(), nullptr);
  EXPECT_EQ(*seq.front(), "a");
  EXPECT_EQ(seq.pop_front(), "a");
  EXPECT_EQ(seq.pop_front(), "b");
}

TEST(Sequencer, StatsTrackDisorderAndOccupancy) {
  Sequencer<int> seq;
  seq.put(2, 2);  // out of order
  seq.put(1, 1);  // still out of order (0 missing)
  seq.put(0, 0);  // in order
  EXPECT_EQ(seq.out_of_order(), 2u);
  EXPECT_EQ(seq.max_parked(), 3u);
  while (seq.front()) seq.pop_front();
  EXPECT_EQ(seq.next(), 3u);
  EXPECT_EQ(seq.max_parked(), 3u);  // high-water mark sticks
}

TEST(Sequencer, FrontPointerAllowsInPlaceConsumption) {
  // The daemon's pump try_pushes *front() and only pop_fronts on success —
  // a rejected push must leave the head intact.
  Sequencer<std::string> seq;
  seq.put(0, "payload");
  ASSERT_NE(seq.front(), nullptr);
  std::string stolen = std::move(*seq.front());  // simulated successful push
  EXPECT_EQ(stolen, "payload");
  seq.pop_front();
  EXPECT_EQ(seq.next(), 1u);
}

TEST(Sequencer, ConcurrentProducersSingleDrainer) {
  // The usage pattern both hosts run: N threads put under a mutex, whoever
  // sees a ready head drains. Output must be a permutation-free 0..N-1.
  constexpr int kItems = 2000;
  Sequencer<int> seq;
  std::mutex mu;
  std::vector<int> out;
  std::vector<std::uint64_t> tickets(kItems);
  for (int i = 0; i < kItems; ++i) tickets[i] = static_cast<std::uint64_t>(i);
  std::shuffle(tickets.begin(), tickets.end(), std::mt19937(7));

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<int> cursor{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        int i = cursor.fetch_add(1);
        if (i >= kItems) return;
        std::lock_guard<std::mutex> lock(mu);
        seq.put(tickets[i], static_cast<int>(tickets[i]));
        while (seq.front()) out.push_back(seq.pop_front());
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(out[i], i);
}

// ------------------------------------------------------------ EpochSequencer

struct Collector {
  std::vector<int> data;                                         ///< delivery order
  std::vector<std::pair<std::uint32_t, std::uint64_t>> markers;  ///< (epoch, expected)

  auto on_data() {
    return [this](int&& v) { data.push_back(v); };
  }
  auto on_marker() {
    return [this](std::uint32_t e, std::uint64_t n) { markers.emplace_back(e, n); };
  }
};

TEST(EpochSequencer, SingleSenderHappyPath) {
  EpochSequencer<int> es(1);
  Collector c;
  es.data(0, 10, c.on_data(), c.on_marker());
  es.data(0, 11, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());
  es.sentinel(0, 2, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(c.markers[0], (std::pair<std::uint32_t, std::uint64_t>{0, 2}));
  EXPECT_EQ(es.epochs_completed(), 1u);
  EXPECT_EQ(es.current_epoch(), 1u);
}

TEST(EpochSequencer, SentinelOvertakingDataHeldBack) {
  EpochSequencer<int> es(1);
  Collector c;
  es.sentinel(0, 2, c.on_data(), c.on_marker());  // beats ALL its data
  EXPECT_TRUE(c.markers.empty());
  es.data(0, 1, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());
  es.data(0, 2, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);  // only after the counted data arrived
  EXPECT_EQ(c.data.size(), 2u);
}

TEST(EpochSequencer, AllSendersSentinelsRequired) {
  EpochSequencer<int> es(3);
  Collector c;
  es.sentinel(0, 0, c.on_data(), c.on_marker());
  es.sentinel(0, 0, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());
  es.sentinel(0, 0, c.on_data(), c.on_marker());
  EXPECT_EQ(c.markers.size(), 1u);
}

TEST(EpochSequencer, FutureEpochDataHeldUntilCurrentCompletes) {
  EpochSequencer<int> es(1);
  Collector c;
  es.data(1, 100, c.on_data(), c.on_marker());  // epoch 1 overtook epoch 0
  EXPECT_TRUE(c.data.empty());
  EXPECT_EQ(es.held_count(), 1u);
  es.data(0, 1, c.on_data(), c.on_marker());
  EXPECT_EQ(c.data.size(), 1u);  // only the current-epoch item
  es.sentinel(0, 1, c.on_data(), c.on_marker());
  // Epoch 0 completed: its marker fired and epoch 1's held data flushed.
  ASSERT_EQ(c.markers.size(), 1u);
  ASSERT_EQ(c.data.size(), 2u);
  EXPECT_EQ(c.data[1], 100);
  EXPECT_EQ(es.held_count(), 0u);
  es.sentinel(1, 1, c.on_data(), c.on_marker());
  EXPECT_EQ(c.markers.size(), 2u);
  EXPECT_EQ(es.epochs_completed(), 2u);
}

TEST(EpochSequencer, ChainedCompletionsFlushInOneCall) {
  // Epochs 1 and 2 fully buffered while epoch 0 is still open: the final
  // epoch-0 sentinel must cascade 0, 1 and 2 to completion, in order.
  EpochSequencer<int> es(1);
  Collector c;
  es.data(1, 10, c.on_data(), c.on_marker());
  es.sentinel(1, 1, c.on_data(), c.on_marker());
  es.data(2, 20, c.on_data(), c.on_marker());
  es.sentinel(2, 1, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());
  es.sentinel(0, 0, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 3u);
  EXPECT_EQ(c.markers[0].first, 0u);
  EXPECT_EQ(c.markers[1].first, 1u);
  EXPECT_EQ(c.markers[2].first, 2u);
  EXPECT_EQ(c.data.size(), 2u);
  EXPECT_EQ(c.data[0], 10);
  EXPECT_EQ(c.data[1], 20);
}

TEST(EpochSequencer, HeldCountSurvivesDeadSender) {
  // A sender dying mid-epoch leaves future-epoch data stranded — a host
  // that closes locally (no finish()) reads held_count() to account the
  // loss as drops.
  EpochSequencer<int> es(2);
  Collector c;
  es.data(1, 1, c.on_data(), c.on_marker());
  es.data(2, 2, c.on_data(), c.on_marker());
  es.sentinel(0, 0, c.on_data(), c.on_marker());  // only one of two senders
  EXPECT_TRUE(c.markers.empty());
  EXPECT_EQ(es.held_count(), 2u);
}

// ------------------------------------------------- EpochSequencer: repair

TEST(EpochSequencer, DeadSenderRepairsWedgedEpoch) {
  // Sender 1 dies before its sentinel: the epoch must complete degraded
  // instead of holding the stream forever. The repaired marker reports the
  // delivered count, not the (unknowable) announced one.
  EpochSequencer<int> es(2);
  Collector c;
  es.data(0, 0u, 10, c.on_data(), c.on_marker());
  es.sentinel(0, 0u, 1, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());  // still waiting on sender 1
  es.sender_dead(1, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(c.markers[0], (std::pair<std::uint32_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(es.epochs_completed(), 1u);
  EXPECT_EQ(es.epochs_repaired(), 1u);
  EXPECT_EQ(es.dead_senders(), 1u);
}

TEST(EpochSequencer, DeadSenderAfterSentinelMissingItemsNoLongerGates) {
  // Sender 1 announced 2 items, delivered 1, then died: its missing tail
  // must stop gating completion (the live sender's accounting is intact).
  EpochSequencer<int> es(2);
  Collector c;
  es.sentinel(0, 0u, 1, c.on_data(), c.on_marker());
  es.data(0, 0u, 10, c.on_data(), c.on_marker());
  es.sentinel(0, 1u, 2, c.on_data(), c.on_marker());
  es.data(0, 1u, 20, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());  // sender 1 still owes one item
  es.sender_dead(1, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(c.markers[0].second, 2u);  // both delivered items counted
  EXPECT_EQ(c.data.size(), 2u);
  EXPECT_EQ(es.epochs_repaired(), 1u);
}

TEST(EpochSequencer, DeadSenderReleasesHeldFutureEpochItems) {
  // Sender 0 raced ahead into epoch 1 while sender 1 held epoch 0 open by
  // dying: the repair must flush the held items, not strand them.
  EpochSequencer<int> es(2);
  Collector c;
  es.sentinel(0, 0u, 0, c.on_data(), c.on_marker());
  es.data(1, 0u, 100, c.on_data(), c.on_marker());
  EXPECT_EQ(es.held_count(), 1u);
  es.sender_dead(1, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(es.held_count(), 0u);
  ASSERT_EQ(c.data.size(), 1u);
  EXPECT_EQ(c.data[0], 100);
  // Epoch 1 then completes with sender 0 alone.
  es.sentinel(1, 0u, 1, c.on_data(), c.on_marker());
  EXPECT_EQ(es.epochs_completed(), 2u);
  EXPECT_EQ(es.epochs_repaired(), 2u);
}

TEST(EpochSequencer, AllSendersDeadCompletesOnlyEvidencedEpochs) {
  // With everyone dead, epochs with direct evidence complete — but the
  // stream must never mint phantom epochs past the evidence.
  EpochSequencer<int> es(2);
  Collector c;
  es.data(0, 0u, 1, c.on_data(), c.on_marker());
  es.sender_dead(0, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());  // sender 1 still live and owed
  es.sender_dead(1, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(es.epochs_completed(), 1u);
  EXPECT_EQ(es.epochs_repaired(), 1u);
  EXPECT_EQ(es.current_epoch(), 1u);  // stops: no evidence for epoch 1
}

TEST(EpochSequencer, RevivedSenderReArmsAndStaleResendsDrop) {
  EpochSequencer<int> es(2);
  Collector c;
  es.sentinel(0, 0u, 0, c.on_data(), c.on_marker());
  es.sender_dead(1, c.on_data(), c.on_marker());  // epoch 0 repairs
  ASSERT_EQ(c.markers.size(), 1u);
  es.sender_revived(1);
  EXPECT_EQ(es.dead_senders(), 0u);
  // The revived sender re-serves the already-repaired epoch 0: the data
  // drops as stale (counted), the sentinel is ignored.
  EXPECT_FALSE(es.data(0, 1u, 5, c.on_data(), c.on_marker()));
  es.sentinel(0, 1u, 1, c.on_data(), c.on_marker());
  EXPECT_EQ(es.stale_drops(), 1u);
  EXPECT_EQ(c.markers.size(), 1u);
  EXPECT_TRUE(c.data.empty());
  // Epoch 1 requires BOTH senders again — revival re-arms the gate.
  es.sentinel(1, 0u, 0, c.on_data(), c.on_marker());
  EXPECT_EQ(c.markers.size(), 1u);
  es.sentinel(1, 1u, 0, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 2u);
  EXPECT_EQ(es.epochs_repaired(), 1u);  // epoch 1 completed at full strength
}

TEST(EpochSequencer, AnonymousDeathFallsBackToGlobalCounting) {
  // A muxed source cannot attribute — each kUnattributed death writes off
  // one sender and completion falls back to global sentinel/item counts.
  EpochSequencer<int> es(2);
  Collector c;
  es.sentinel(0, 1, c.on_data(), c.on_marker());  // unattributed overload
  es.data(0, 7, c.on_data(), c.on_marker());
  EXPECT_TRUE(c.markers.empty());
  es.sender_dead(EpochSequencer<int>::kUnattributed, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(es.epochs_repaired(), 1u);
  EXPECT_EQ(es.dead_senders(), 1u);
}

TEST(EpochSequencer, FinishRepairsEvidencedEpochsButNeverMintsGaps) {
  // End-of-stream repair walks evidenced epochs in order and stops at the
  // first gap: epoch 2's held item stays for the host to account.
  EpochSequencer<int> es(1);
  Collector c;
  es.data(0, 1, c.on_data(), c.on_marker());
  es.data(2, 3, c.on_data(), c.on_marker());  // epoch 1 never seen
  es.finish(c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(c.markers[0].first, 0u);
  EXPECT_EQ(es.current_epoch(), 1u);
  EXPECT_EQ(es.held_count(), 1u);
  EXPECT_EQ(es.epochs_repaired(), 1u);
}

TEST(EpochSequencer, DuplicateSentinelReplacesAnnouncement) {
  // A revived sender re-announces an epoch it sentineled before dying: the
  // new count replaces the old one instead of double-counting.
  EpochSequencer<int> es(2);
  Collector c;
  es.sentinel(0, 0u, 3, c.on_data(), c.on_marker());
  es.sentinel(0, 0u, 1, c.on_data(), c.on_marker());  // replaces, not adds
  es.data(0, 0u, 10, c.on_data(), c.on_marker());
  es.sentinel(0, 1u, 0, c.on_data(), c.on_marker());
  ASSERT_EQ(c.markers.size(), 1u);
  EXPECT_EQ(c.markers[0].second, 1u);     // expected reflects the replacement
  EXPECT_EQ(es.epochs_repaired(), 0u);    // full-strength completion
}

}  // namespace
}  // namespace emlio
