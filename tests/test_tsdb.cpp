// Tests for the embedded time-series database and line protocol.
#include <gtest/gtest.h>

#include <filesystem>

#include "tsdb/line_protocol.h"
#include "tsdb/tsdb.h"

namespace emlio::tsdb {
namespace {

Point make_point(const std::string& node, Nanos ts, double cpu, double gpu = 0.0) {
  Point p;
  p.measurement = "energy";
  p.tags["node_id"] = node;
  p.fields["cpu_energy"] = cpu;
  if (gpu > 0) p.fields["gpu_energy"] = gpu;
  p.timestamp = ts;
  return p;
}

TEST(Tsdb, WriteAndSelectByRange) {
  Database db;
  for (int i = 0; i < 10; ++i) db.write(make_point("n0", i * 100, i));
  Query q;
  q.measurement = "energy";
  q.start = 200;
  q.end = 500;
  auto rows = db.select(q);
  ASSERT_EQ(rows.size(), 3u);  // ts 200, 300, 400
  EXPECT_EQ(rows.front().timestamp, 200);
  EXPECT_EQ(rows.back().timestamp, 400);
}

TEST(Tsdb, TagFilterSelectsSeries) {
  Database db;
  db.write(make_point("a", 1, 1.0));
  db.write(make_point("b", 2, 2.0));
  Query q;
  q.measurement = "energy";
  q.tag_filter["node_id"] = "b";
  auto rows = db.select(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tags.at("node_id"), "b");
}

TEST(Tsdb, AggregateSumMeanMinMax) {
  Database db;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    db.write(make_point("n0", static_cast<Nanos>(v), v));
  }
  Query q;
  q.measurement = "energy";
  auto agg = db.aggregate(q, "cpu_energy");
  EXPECT_EQ(agg.count, 4u);
  EXPECT_DOUBLE_EQ(agg.sum, 10.0);
  EXPECT_DOUBLE_EQ(agg.mean(), 2.5);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 4.0);
  EXPECT_DOUBLE_EQ(db.sum(q, "cpu_energy"), 10.0);
}

TEST(Tsdb, AggregateMissingFieldIsEmpty) {
  Database db;
  db.write(make_point("n0", 1, 5.0));
  Query q;
  q.measurement = "energy";
  auto agg = db.aggregate(q, "gpu_energy");
  EXPECT_EQ(agg.count, 0u);
  EXPECT_EQ(agg.sum, 0.0);
}

TEST(Tsdb, OutOfOrderWritesAreSorted) {
  Database db;
  db.write(make_point("n0", 300, 3));
  db.write(make_point("n0", 100, 1));
  db.write(make_point("n0", 200, 2));
  Query q;
  q.measurement = "energy";
  auto rows = db.select(q);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].timestamp, 100);
  EXPECT_EQ(rows[1].timestamp, 200);
  EXPECT_EQ(rows[2].timestamp, 300);
}

TEST(Tsdb, TagValuesEnumeratesNodes) {
  Database db;
  db.write(make_point("n1", 1, 1));
  db.write(make_point("n0", 1, 1));
  db.write(make_point("n1", 2, 2));
  auto nodes = db.tag_values("energy", "node_id");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], "n0");
  EXPECT_EQ(nodes[1], "n1");
  EXPECT_TRUE(db.tag_values("missing", "node_id").empty());
}

TEST(Tsdb, BatchWriteAndCount) {
  Database db;
  std::vector<Point> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(make_point("n0", i, i));
  db.write_points(std::move(batch));
  EXPECT_EQ(db.total_points(), 64u);
  db.clear();
  EXPECT_EQ(db.total_points(), 0u);
}

TEST(Tsdb, DifferentMeasurementsIsolated) {
  Database db;
  Point p = make_point("n0", 1, 1);
  p.measurement = "other";
  db.write(p);
  db.write(make_point("n0", 1, 2));
  Query q;
  q.measurement = "energy";
  EXPECT_EQ(db.select(q).size(), 1u);
}

TEST(LineProtocol, FormatPoint) {
  auto p = make_point("node 1", 123456789, 2.5);
  auto line = to_line(p);
  EXPECT_NE(line.find("energy,node_id=node\\ 1"), std::string::npos);
  EXPECT_NE(line.find("cpu_energy=2.5"), std::string::npos);
  EXPECT_NE(line.find(" 123456789"), std::string::npos);
}

TEST(LineProtocol, ParseRoundTrip) {
  auto p = make_point("n=odd,name", 42, 1.25, 3.75);
  auto back = from_line(to_line(p));
  EXPECT_EQ(back, p);
}

TEST(LineProtocol, FractionalFieldsRoundTripExactly) {
  // Values with no finite decimal representation must survive
  // to_line → from_line bit-for-bit (shortest round-trip formatting).
  const double values[] = {0.1, 1.0 / 3.0, 2.5000000000000004, 1e-300,
                           123456.789012345678, 0.30000000000000004};
  for (double v : values) {
    Point p = make_point("n0", 7, v);
    Point back = from_line(to_line(p));
    ASSERT_EQ(back.fields.size(), 1u);
    EXPECT_EQ(back.fields.at("cpu_energy"), v) << "value " << v;
    EXPECT_EQ(back, p);
  }
}

TEST(LineProtocol, FileRoundTripPreservesFractionalValues) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "emlio_tsdb_frac_test";
  fs::create_directories(dir);
  auto path = (dir / "frac.lp").string();

  Database db;
  db.write(make_point("n0", 1, 0.1, 1.0 / 3.0));
  db.write(make_point("n0", 2, 0.30000000000000004));
  Query all;
  all.measurement = "energy";
  export_file(db, all, path);

  Database db2;
  ASSERT_EQ(import_file(db2, path), 2u);
  EXPECT_EQ(db2.select(all), db.select(all));  // exact Point equality
  fs::remove_all(dir);
}

TEST(LineProtocol, ParseErrors) {
  EXPECT_THROW(from_line("just-a-measurement"), std::runtime_error);
  EXPECT_THROW(from_line("m f=notanumber 1"), std::runtime_error);
  EXPECT_THROW(from_line("m f=1 notatime"), std::runtime_error);
  EXPECT_THROW(from_line("m,badtag f=1 1"), std::runtime_error);
}

TEST(LineProtocol, FileExportImport) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "emlio_tsdb_test";
  fs::create_directories(dir);
  auto path = (dir / "trace.lp").string();

  Database db;
  for (int i = 0; i < 20; ++i) db.write(make_point("n0", i * 10, i, i * 2.0));
  Query all;
  all.measurement = "energy";
  export_file(db, all, path);

  Database db2;
  EXPECT_EQ(import_file(db2, path), 20u);
  EXPECT_DOUBLE_EQ(db2.sum(all, "cpu_energy"), db.sum(all, "cpu_energy"));
  EXPECT_DOUBLE_EQ(db2.sum(all, "gpu_energy"), db.sum(all, "gpu_energy"));
  fs::remove_all(dir);
}

TEST(LineProtocol, ImportMissingFileThrows) {
  Database db;
  EXPECT_THROW(import_file(db, "/nonexistent/trace.lp"), std::runtime_error);
}

}  // namespace
}  // namespace emlio::tsdb
