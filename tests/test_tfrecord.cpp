// Unit tests for TFRecord framing, writer/reader, shard index and builder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "tfrecord/dataset_builder.h"
#include "tfrecord/reader.h"
#include "tfrecord/record_io.h"
#include "tfrecord/shard_index.h"
#include "tfrecord/writer.h"

namespace emlio::tfrecord {
namespace {

namespace fs = std::filesystem;

class TfrecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("emlio_tfr_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(RecordIo, FramedSizeAddsOverhead) {
  EXPECT_EQ(framed_size(0), 16u);
  EXPECT_EQ(framed_size(100), 116u);
}

TEST(RecordIo, WriteReadRoundTrip) {
  ByteBuffer buf;
  auto data = payload(37, 0xAB);
  write_record(data, buf);
  auto parsed = read_record(buf.view());
  EXPECT_EQ(parsed.framed_size, framed_size(37));
  EXPECT_EQ(std::vector<std::uint8_t>(parsed.payload.begin(), parsed.payload.end()), data);
}

TEST(RecordIo, DetectsPayloadCorruption) {
  ByteBuffer buf;
  write_record(payload(32, 1), buf);
  buf.data()[20] ^= 0xFF;  // flip a payload byte
  EXPECT_THROW(read_record(buf.view()), std::runtime_error);
  // Unchecked read skips CRC verification by design.
  EXPECT_NO_THROW(read_record_unchecked(buf.view()));
}

TEST(RecordIo, DetectsLengthCorruption) {
  ByteBuffer buf;
  write_record(payload(32, 1), buf);
  buf.data()[0] ^= 0x01;  // flip a length byte
  EXPECT_THROW(read_record(buf.view()), std::runtime_error);
}

TEST(RecordIo, TruncatedInputThrows) {
  ByteBuffer buf;
  write_record(payload(32, 1), buf);
  auto view = buf.view().subspan(0, buf.size() - 4);
  EXPECT_THROW(read_record(view), std::out_of_range);
}

TEST(RecordIo, BackToBackRecordsParseSequentially) {
  ByteBuffer buf;
  write_record(payload(10, 1), buf);
  write_record(payload(20, 2), buf);
  auto first = read_record(buf.view());
  auto second = read_record(buf.view().subspan(first.framed_size));
  EXPECT_EQ(first.payload.size(), 10u);
  EXPECT_EQ(second.payload.size(), 20u);
  EXPECT_EQ(second.payload[0], 2);
}

TEST_F(TfrecordTest, WriterProducesIndexAndFile) {
  ShardWriter w(3, path("s.tfrecord"));
  auto e0 = w.append(payload(100, 7), 42, 1000);
  auto e1 = w.append(payload(50, 8), 43, 1001);
  EXPECT_EQ(e0.offset, 0u);
  EXPECT_EQ(e1.offset, framed_size(100));
  auto idx = w.finish();
  EXPECT_EQ(idx.shard_id, 3u);
  EXPECT_EQ(idx.num_records(), 2u);
  EXPECT_EQ(idx.file_bytes, framed_size(100) + framed_size(50));
  EXPECT_EQ(fs::file_size(path("s.tfrecord")), idx.file_bytes);
}

TEST_F(TfrecordTest, WriterRejectsUseAfterFinish) {
  ShardWriter w(0, path("s.tfrecord"));
  w.append(payload(1, 0), 0, 0);
  w.finish();
  EXPECT_THROW(w.append(payload(1, 0), 0, 1), std::runtime_error);
  EXPECT_THROW(w.finish(), std::runtime_error);
}

TEST_F(TfrecordTest, ReaderReadsRecordsAndSlices) {
  ShardWriter w(0, path("s.tfrecord"));
  for (int i = 0; i < 10; ++i) {
    w.append(payload(10 + static_cast<std::size_t>(i), static_cast<std::uint8_t>(i)), i, 100 + i);
  }
  ShardReader reader(w.finish());
  EXPECT_EQ(reader.num_records(), 10u);
  auto r3 = reader.record(3, /*verify=*/true);
  EXPECT_EQ(r3.size(), 13u);
  EXPECT_EQ(r3[0], 3);

  auto views = reader.slice(2, 5, /*verify=*/true);
  ASSERT_EQ(views.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)][0], i + 2);
    EXPECT_EQ(views[static_cast<std::size_t>(i)].size(), 12u + static_cast<std::size_t>(i));
  }
}

TEST_F(TfrecordTest, SliceBoundsChecked) {
  ShardWriter w(0, path("s.tfrecord"));
  for (int i = 0; i < 4; ++i) w.append(payload(8, 0), 0, static_cast<std::uint64_t>(i));
  ShardReader reader(w.finish());
  EXPECT_THROW(reader.slice(2, 3), std::out_of_range);
  EXPECT_THROW(reader.slice(0, 0), std::out_of_range);
  EXPECT_THROW(reader.record(4), std::out_of_range);
}

TEST_F(TfrecordTest, ReaderRejectsSizeMismatch) {
  ShardWriter w(0, path("s.tfrecord"));
  w.append(payload(8, 0), 0, 0);
  auto idx = w.finish();
  idx.file_bytes += 1;
  EXPECT_THROW(ShardReader{idx}, std::runtime_error);
}

TEST_F(TfrecordTest, VerifyAllCatchesCorruption) {
  ShardWriter w(0, path("s.tfrecord"));
  for (int i = 0; i < 5; ++i) w.append(payload(64, 1), 0, static_cast<std::uint64_t>(i));
  auto idx = w.finish();
  {
    ShardReader reader(idx);
    EXPECT_EQ(reader.verify_all(), 5u);
  }
  // Corrupt one payload byte on disk.
  std::fstream f(path("s.tfrecord"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put('\x7f');
  f.close();
  ShardReader reader(idx);
  EXPECT_THROW(reader.verify_all(), std::runtime_error);
}

TEST_F(TfrecordTest, RebuildIndexFromFile) {
  ShardWriter w(9, path("s.tfrecord"));
  for (int i = 0; i < 7; ++i)
    w.append(payload(32 + static_cast<std::size_t>(i), 0), i, static_cast<std::uint64_t>(i));
  auto idx = w.finish();
  auto rebuilt = ShardReader::rebuild_index(9, path("s.tfrecord"));
  ASSERT_EQ(rebuilt.num_records(), idx.num_records());
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(rebuilt.records[i].offset, idx.records[i].offset);
    EXPECT_EQ(rebuilt.records[i].framed_size, idx.records[i].framed_size);
  }
}

TEST_F(TfrecordTest, ShardIndexJsonRoundTrip) {
  ShardIndex idx;
  idx.shard_id = 12;
  idx.shard_path = path("s.tfrecord");
  idx.file_bytes = 12345;
  idx.records.push_back({0, 116, -7, 42});
  idx.records.push_back({116, 66, 3, 43});
  idx.save(path("mapping_shard_0012.json"));
  auto loaded = ShardIndex::load(path("mapping_shard_0012.json"));
  EXPECT_EQ(loaded.shard_id, 12u);
  EXPECT_EQ(loaded.file_bytes, 12345u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[0].label, -7);
  EXPECT_EQ(loaded.records[1].sample_index, 43u);
}

TEST_F(TfrecordTest, ByteRangeCoversContiguousRecords) {
  ShardIndex idx;
  idx.records.push_back({0, 100, 0, 0});
  idx.records.push_back({100, 50, 0, 1});
  idx.records.push_back({150, 25, 0, 2});
  auto [lo, hi] = idx.byte_range(0, 3);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 175u);
  auto [lo2, hi2] = idx.byte_range(1, 1);
  EXPECT_EQ(lo2, 100u);
  EXPECT_EQ(hi2, 150u);
  EXPECT_THROW(idx.byte_range(2, 2), std::out_of_range);
}

TEST_F(TfrecordTest, IndexFilenameConvention) {
  EXPECT_EQ(ShardIndex::index_filename(7), "mapping_shard_0007.json");
  EXPECT_EQ(ShardIndex::shard_filename(12), "shard_0012.tfrecord");
}

TEST_F(TfrecordTest, DatasetBuilderRoundRobinAndIndexes) {
  DatasetBuilderOptions opt;
  opt.num_shards = 3;
  opt.directory = (dir_ / "ds").string();
  auto built = build_dataset(opt, 10, [](std::uint64_t i) {
    RawSample s;
    s.bytes = payload(16 + i, static_cast<std::uint8_t>(i));
    s.label = static_cast<std::int64_t>(i * 2);
    return s;
  });
  EXPECT_EQ(built.shards.size(), 3u);
  EXPECT_EQ(built.total_records(), 10u);
  // Round-robin: shard 0 gets samples 0,3,6,9 → 4 records.
  EXPECT_EQ(built.shards[0].num_records(), 4u);
  EXPECT_EQ(built.shards[1].num_records(), 3u);
  EXPECT_EQ(built.shards[2].num_records(), 3u);
  // Labels and sample ids preserved.
  EXPECT_EQ(built.shards[1].records[0].sample_index, 1u);
  EXPECT_EQ(built.shards[1].records[0].label, 2);

  auto loaded = load_all_indexes(opt.directory);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[2].shard_id, 2u);

  // Every record readable and CRC-clean.
  for (const auto& idx : loaded) {
    ShardReader reader(idx);
    EXPECT_EQ(reader.verify_all(), idx.num_records());
  }
}

TEST_F(TfrecordTest, LoadAllIndexesMissingDirThrows) {
  EXPECT_THROW(load_all_indexes((dir_ / "missing").string()), std::runtime_error);
}

TEST_F(TfrecordTest, BuilderValidatesOptions) {
  DatasetBuilderOptions opt;
  opt.num_shards = 0;
  opt.directory = (dir_ / "x").string();
  EXPECT_THROW(build_dataset(opt, 1, [](std::uint64_t) { return RawSample{}; }),
               std::runtime_error);
  opt.num_shards = 1;
  opt.directory = "";
  EXPECT_THROW(build_dataset(opt, 1, [](std::uint64_t) { return RawSample{}; }),
               std::runtime_error);
}

TEST_F(TfrecordTest, EmptyFileMmapAndZeroRecords) {
  ShardWriter w(0, path("empty.tfrecord"));
  auto idx = w.finish();
  ShardReader reader(idx);
  EXPECT_EQ(reader.verify_all(), 0u);
}

// Parameterized slice property: for random record layouts, any in-bounds
// slice returns payloads identical to per-record reads.
class SliceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SliceProperty, SliceEqualsPerRecordReads) {
  auto dir = fs::temp_directory_path() / ("emlio_slice_" + std::to_string(GetParam()));
  fs::create_directories(dir);
  Rng rng(GetParam());
  ShardWriter w(0, (dir / "s.tfrecord").string());
  std::size_t n = 20 + rng.uniform(30);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> data(1 + rng.uniform(200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    w.append(data, 0, i);
  }
  ShardReader reader(w.finish());
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t first = rng.uniform(n);
    std::size_t count = 1 + rng.uniform(n - first);
    auto views = reader.slice(first, count, true);
    for (std::size_t i = 0; i < count; ++i) {
      auto single = reader.record(first + i, true);
      EXPECT_TRUE(std::equal(views[i].begin(), views[i].end(), single.begin(), single.end()));
    }
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceProperty, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace emlio::tfrecord
