// SampleCache unit tests (policies, byte budget, refcount pinning, thread
// safety) plus end-to-end integration: multi-epoch daemon runs with the
// cache on/off must ship byte-identical streams, and eviction pressure
// while sender lanes hold views must never corrupt in-flight data.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <tuple>
#include <vector>

#include "cache/sample_cache.h"
#include "core/service.h"
#include "train/trainer.h"
#include "workload/materialize.h"

namespace emlio::cache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>((seed * 31 + i) & 0xff);
  return v;
}

SampleCacheConfig tiny_config(CachePolicy policy, std::size_t capacity) {
  SampleCacheConfig cc;
  cc.capacity_bytes = capacity;
  cc.policy = policy;
  cc.shards = 1;  // deterministic eviction order for the policy tests
  return cc;
}

TEST(SampleCachePolicy, ParseRoundTrip) {
  EXPECT_EQ(parse_policy("clock"), CachePolicy::kClock);
  EXPECT_EQ(parse_policy("lru"), CachePolicy::kLru);
  EXPECT_FALSE(parse_policy("mru").has_value());
  EXPECT_STREQ(policy_name(CachePolicy::kClock), "clock");
  EXPECT_STREQ(policy_name(CachePolicy::kLru), "lru");
}

TEST(SampleCacheUnit, InsertFindRoundTrip) {
  SampleCache cache(tiny_config(CachePolicy::kClock, 64 * 1024));
  SampleKey key{3, 41};
  EXPECT_FALSE(cache.find(key).has_value());

  auto bytes = pattern_bytes(512, 41);
  auto inserted = cache.insert(key, bytes);
  ASSERT_TRUE(inserted.has_value());
  EXPECT_TRUE(inserted->owns_storage());
  EXPECT_EQ(inserted->to_vector(), bytes);

  auto hit = cache.find(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->to_vector(), bytes);
  EXPECT_TRUE(hit->shares_storage_with(*inserted));  // one resident copy

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.resident_bytes, 512u);
}

TEST(SampleCacheUnit, DuplicateInsertReturnsResidentEntry) {
  SampleCache cache(tiny_config(CachePolicy::kLru, 64 * 1024));
  SampleKey key{1, 1};
  auto bytes = pattern_bytes(100, 1);
  auto first = cache.insert(key, bytes);
  auto second = cache.insert(key, bytes);
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(second->shares_storage_with(*first));
  auto s = cache.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SampleCacheUnit, LruEvictsLeastRecentlyUsed) {
  // Budget fits exactly three 1 KiB entries.
  SampleCache cache(tiny_config(CachePolicy::kLru, 3 * 1024));
  auto insert = [&](std::uint64_t i) {
    ASSERT_TRUE(cache.insert({0, i}, pattern_bytes(1024, i)).has_value());
  };
  insert(0);
  insert(1);
  insert(2);
  (void)cache.find({0, 0});  // 0 becomes MRU; 1 is now the LRU victim
  insert(3);

  EXPECT_TRUE(cache.find({0, 0}).has_value());
  EXPECT_FALSE(cache.find({0, 1}).has_value());
  EXPECT_TRUE(cache.find({0, 2}).has_value());
  EXPECT_TRUE(cache.find({0, 3}).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SampleCacheUnit, ClockGivesReferencedEntriesASecondChance) {
  SampleCache cache(tiny_config(CachePolicy::kClock, 2 * 1024));
  ASSERT_TRUE(cache.insert({0, 0}, pattern_bytes(1024, 0)).has_value());
  ASSERT_TRUE(cache.insert({0, 1}, pattern_bytes(1024, 1)).has_value());
  // The hand starts at entry 1 (most recent insert is the list head). Its
  // reference bit makes the hand skip it and evict entry 0 instead.
  (void)cache.find({0, 1});
  ASSERT_TRUE(cache.insert({0, 2}, pattern_bytes(1024, 2)).has_value());

  EXPECT_FALSE(cache.find({0, 0}).has_value());
  EXPECT_TRUE(cache.find({0, 1}).has_value());
  EXPECT_TRUE(cache.find({0, 2}).has_value());
}

TEST(SampleCacheUnit, ByteBudgetHoldsUnderChurn) {
  for (auto policy : {CachePolicy::kClock, CachePolicy::kLru}) {
    SampleCache cache(tiny_config(policy, 8 * 1024));
    for (std::uint64_t i = 0; i < 100; ++i) {
      (void)cache.insert({0, i}, pattern_bytes(512, i));
      EXPECT_LE(cache.stats().resident_bytes, 8u * 1024) << policy_name(policy);
    }
    auto s = cache.stats();
    EXPECT_LE(s.resident_bytes_peak, 8u * 1024) << policy_name(policy);
    EXPECT_GE(s.evictions, 80u) << policy_name(policy);
    EXPECT_EQ(s.inserts, 100u) << policy_name(policy);
  }
}

TEST(SampleCacheUnit, OversizedInsertRejected) {
  SampleCache cache(tiny_config(CachePolicy::kClock, 1024));
  EXPECT_FALSE(cache.insert({0, 0}, pattern_bytes(2048, 0)).has_value());
  auto s = cache.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
}

// The tentpole guarantee: an entry whose bytes a sender lane (or any other
// consumer) still references is pinned — eviction pressure walks around it
// and the held view's bytes stay intact, for both policies.
TEST(SampleCacheUnit, PinnedEntrySurvivesEvictionPressure) {
  for (auto policy : {CachePolicy::kClock, CachePolicy::kLru}) {
    SCOPED_TRACE(policy_name(policy));
    SampleCache cache(tiny_config(policy, 3 * 1024));
    auto expected = pattern_bytes(1024, 7);
    auto pinned = cache.insert({0, 7}, expected);
    ASSERT_TRUE(pinned.has_value());  // holding this view pins the entry

    // Enough churn to evict everything evictable several times over.
    for (std::uint64_t i = 100; i < 120; ++i) {
      (void)cache.insert({0, i}, pattern_bytes(1024, i));
    }

    auto s = cache.stats();
    EXPECT_GE(s.evictions, 17u);
    EXPECT_GE(s.pinned_skips, 1u);
    EXPECT_LE(s.resident_bytes, 3u * 1024);
    EXPECT_EQ(pinned->to_vector(), expected);  // bytes never recycled
    EXPECT_TRUE(cache.find({0, 7}).has_value());

    // Dropping the last outside handle unpins it; churn now evicts it.
    pinned.reset();
    for (std::uint64_t i = 200; i < 220; ++i) {
      (void)cache.insert({0, i}, pattern_bytes(1024, i));
    }
    EXPECT_FALSE(cache.find({0, 7}).has_value());
  }
}

TEST(SampleCacheUnit, InsertRejectedWhenEveryCandidateIsPinned) {
  SampleCache cache(tiny_config(CachePolicy::kClock, 2 * 1024));
  auto a = cache.insert({0, 0}, pattern_bytes(1024, 0));
  auto b = cache.insert({0, 1}, pattern_bytes(1024, 1));
  ASSERT_TRUE(a && b);
  // Both entries pinned by the held views: nothing can make room.
  EXPECT_FALSE(cache.insert({0, 2}, pattern_bytes(1024, 2)).has_value());
  auto s = cache.stats();
  EXPECT_GE(s.rejected, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_TRUE(cache.find({0, 0}).has_value());
  EXPECT_TRUE(cache.find({0, 1}).has_value());
}

TEST(SampleCacheUnit, ClearDropsUnpinnedKeepsPinned) {
  SampleCache cache(tiny_config(CachePolicy::kLru, 64 * 1024));
  auto held = cache.insert({0, 0}, pattern_bytes(256, 0));
  ASSERT_TRUE(held.has_value());
  ASSERT_TRUE(cache.insert({0, 1}, pattern_bytes(256, 1)).has_value());

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 1u);  // the pinned entry stays tracked
  EXPECT_TRUE(cache.find({0, 0}).has_value());
  EXPECT_FALSE(cache.find({0, 1}).has_value());

  held.reset();
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

// Run under ThreadSanitizer in CI: concurrent find/insert/hold across
// shards, every returned view's contents verified against its key.
TEST(SampleCacheUnit, ConcurrentMixedLoadStaysConsistent) {
  SampleCacheConfig cc;
  cc.capacity_bytes = 256 * 1024;  // far smaller than the working set: churn
  cc.policy = CachePolicy::kClock;
  cc.shards = 4;
  SampleCache cache(cc);

  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  constexpr std::uint64_t kKeys = 1024;
  std::atomic<std::uint64_t> corrupt{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::uint64_t k = (static_cast<std::uint64_t>(i) * 2654435761u + t * 97u) % kKeys;
        SampleKey key{9, k};
        auto view = cache.find(key);
        if (!view) view = cache.insert(key, pattern_bytes(512 + k % 256, k));
        if (view && view->to_vector() != pattern_bytes(512 + k % 256, k)) {
          corrupt.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(corrupt.load(), 0u);
  auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.resident_bytes, cc.capacity_bytes);
}

}  // namespace
}  // namespace emlio::cache

// ------------------------------------------------------------- integration

namespace emlio::core {
namespace {

namespace fs = std::filesystem;

class CacheIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("emlio_cache_" + std::to_string(::getpid()) + "_" +
                                        ::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name());
    fs::create_directories(dir_);
    spec_ = workload::presets::tiny(48, 900);
    workload::materialize_tfrecord(spec_, dir_.string(), 3);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServiceConfig config(std::size_t cache_bytes) {
    ServiceConfig cfg;
    cfg.dataset_dir = dir_.string();
    cfg.batch_size = 8;
    cfg.epochs = 3;
    cfg.threads_per_node = 2;
    cfg.cache_bytes = cache_bytes;
    return cfg;
  }

  fs::path dir_;
  workload::DatasetSpec spec_;
};

/// Everything observable about one wire batch, deep-copied for comparison.
using FlatBatch = std::tuple<std::uint64_t,  // batch_id
                             std::vector<std::tuple<std::uint64_t, std::int64_t,
                                                    std::vector<std::uint8_t>>>>;

std::vector<std::vector<FlatBatch>> drain_all_epochs(EmlioService& service) {
  std::vector<std::vector<FlatBatch>> epochs(1);
  while (auto batch = service.next_batch()) {
    if (batch->last) {
      epochs.emplace_back();
      continue;
    }
    std::vector<std::tuple<std::uint64_t, std::int64_t, std::vector<std::uint8_t>>> samples;
    for (const auto& s : batch->samples) {
      samples.emplace_back(s.index, s.label, s.bytes.to_vector());
    }
    epochs.back().emplace_back(batch->batch_id, std::move(samples));
  }
  while (!epochs.empty() && epochs.back().empty()) epochs.pop_back();
  return epochs;
}

// Acceptance criterion: cache-on and cache-off runs of the same plan ship
// byte-identical streams, and the cache counters reconcile exactly with the
// plan's sample counts — all misses in epoch 0, all hits afterwards, zero
// storage reads once warm.
TEST_F(CacheIntegrationTest, WarmEpochsSkipStorageWithByteIdenticalStreams) {
  std::vector<std::vector<FlatBatch>> off_stream, on_stream;
  DaemonStats on_stats;

  {
    EmlioService service(config(/*cache_bytes=*/0));
    service.start();
    off_stream = drain_all_epochs(service);
    service.stop();
    auto s = service.stats().daemon;
    EXPECT_EQ(s.cache.hits + s.cache.misses, 0u);  // cache off: untouched
    EXPECT_EQ(s.store_reads, 18u);                 // 6 batches x 3 epochs
  }
  {
    EmlioService service(config(/*cache_bytes=*/64u << 20));
    service.start();
    on_stream = drain_all_epochs(service);
    service.stop();
    on_stats = service.stats().daemon;
  }

  ASSERT_EQ(off_stream.size(), 3u);
  EXPECT_EQ(off_stream, on_stream);

  // Counter reconciliation against the plan: 48 samples/epoch, 6 batches.
  EXPECT_EQ(on_stats.cache.misses, 48u);       // every sample missed once
  EXPECT_EQ(on_stats.cache.hits, 96u);         // ... and hit twice
  EXPECT_EQ(on_stats.cache.inserts, 48u);
  EXPECT_EQ(on_stats.cache.evictions, 0u);     // dataset fits the budget
  EXPECT_EQ(on_stats.store_reads, 6u);         // cold epoch only
  EXPECT_EQ(on_stats.store_records_read, 48u);
  EXPECT_EQ(on_stats.samples_sent, 144u);
  // Every sample resident after the cold epoch (generated payloads average
  // just under the spec's 900 B nominal size).
  EXPECT_GE(on_stats.cache.resident_bytes_peak, 48u * 800);
}

// Eviction pressure with in-flight consumers: a budget of ~4 samples forces
// the cache to evict continuously while sender lanes and the receiver hold
// views into cached storage. Every delivered sample must still be intact
// (the Trainer CRC-checks payload contents) — recycled-while-referenced
// bytes would surface as corrupt samples.
TEST_F(CacheIntegrationTest, EvictionUnderPressureNeverCorruptsInFlightData) {
  auto cfg = config(/*cache_bytes=*/4 * 1024);
  cfg.cache_policy = "lru";
  EmlioService service(cfg);
  service.start();

  for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
    train::TrainerOptions topt;
    topt.expected_samples_per_epoch = spec_.num_samples;
    train::Trainer trainer(topt);
    trainer.start_epoch(epoch);
    while (auto batch = service.next_batch()) {
      if (batch->last) break;
      trainer.train_step(*batch);
    }
    auto result = trainer.end_epoch();
    EXPECT_TRUE(result.clean(spec_.num_samples))
        << "epoch " << epoch << " dups=" << result.duplicate_samples
        << " corrupt=" << result.corrupt_samples;
  }
  service.stop();

  auto s = service.stats().daemon;
  EXPECT_GT(s.cache.evictions, 0u);
  EXPECT_LE(s.cache.resident_bytes_peak, 4u * 1024);
  EXPECT_GT(s.store_reads, 6u);  // partial hits: storage still consulted
  EXPECT_EQ(s.errors, 0u);
}

TEST_F(CacheIntegrationTest, UnknownCachePolicyThrowsAtConstruction) {
  auto cfg = config(1 << 20);
  cfg.cache_policy = "mru";
  EXPECT_THROW(EmlioService service(cfg), std::runtime_error);
}

// The serial (non-pipelined) engine shares build_batch and therefore the
// cache: warm epochs skip storage there too.
TEST_F(CacheIntegrationTest, SerialEngineUsesTheCacheToo) {
  auto cfg = config(/*cache_bytes=*/64u << 20);
  cfg.pipelined = false;
  EmlioService service(cfg);
  service.start();
  auto stream = drain_all_epochs(service);
  service.stop();

  ASSERT_EQ(stream.size(), 3u);
  auto s = service.stats().daemon;
  EXPECT_EQ(s.store_reads, 6u);  // cold epoch only
  EXPECT_EQ(s.cache.hits, 96u);
  EXPECT_EQ(s.cache.misses, 48u);
}

}  // namespace
}  // namespace emlio::core
