// Unit tests for the JSON value/parser/serializer.
#include <gtest/gtest.h>

#include <filesystem>

#include "json/json.h"

namespace emlio::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedStructure) {
  auto v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(Json, StringEscapes) {
  auto v = parse(R"("line\nquote\"back\\slash\ttab")");
  EXPECT_EQ(v.as_string(), "line\nquote\"back\\slash\ttab");
}

TEST(Json, UnicodeEscapes) {
  auto v = parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xC3\xA9");  // 'A' + e-acute in UTF-8
}

TEST(Json, RoundTripThroughDump) {
  auto original = parse(R"({"n": -3, "d": 0.25, "s": "a\"b", "arr": [true, null], "o": {}})");
  auto reparsed = parse(original.dump());
  EXPECT_EQ(reparsed.at("n").as_int(), -3);
  EXPECT_DOUBLE_EQ(reparsed.at("d").as_double(), 0.25);
  EXPECT_EQ(reparsed.at("s").as_string(), "a\"b");
  EXPECT_EQ(reparsed.at("arr").as_array().size(), 2u);
  EXPECT_TRUE(reparsed.at("o").is_object());
}

TEST(Json, PrettyPrintIsReparseable) {
  auto v = parse(R"({"a": [1, 2], "b": {"c": 3}})");
  auto pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty).at("b").at("c").as_int(), 3);
}

TEST(Json, ErrorsOnMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
  auto v = parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.at("x"), std::runtime_error);
}

TEST(Json, GettersWithFallback) {
  auto v = parse(R"({"i": 5, "d": 2.5, "s": "t"})");
  EXPECT_EQ(v.get_int("i", -1), 5);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 2.5);
  EXPECT_EQ(v.get_string("s", ""), "t");
  EXPECT_EQ(v.get_string("missing", "def"), "def");
  EXPECT_TRUE(v.contains("i"));
  EXPECT_FALSE(v.contains("zzz"));
}

TEST(Json, IntAndDoubleInterchange) {
  EXPECT_EQ(parse("2.0").as_int(), 2);
  EXPECT_DOUBLE_EQ(parse("2").as_double(), 2.0);
}

TEST(Json, FileRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() / "emlio_json_test";
  std::filesystem::create_directories(dir);
  auto path = (dir / "doc.json").string();
  Object o;
  o["key"] = Value("value");
  o["n"] = Value(static_cast<std::int64_t>(7));
  write_file(path, Value(std::move(o)));
  auto v = parse_file(path);
  EXPECT_EQ(v.at("key").as_string(), "value");
  EXPECT_EQ(v.at("n").as_int(), 7);
  std::filesystem::remove_all(dir);
}

TEST(Json, ParseFileMissingThrows) {
  EXPECT_THROW(parse_file("/nonexistent/nope.json"), std::runtime_error);
}

TEST(Json, DeterministicKeyOrder) {
  auto v = parse(R"({"zebra": 1, "apple": 2})");
  auto dumped = v.dump();
  EXPECT_LT(dumped.find("apple"), dumped.find("zebra"));
}

// Fuzz regression: parse_value recurses once per nesting level, so an
// unterminated "[[[[..." document used to probe the stack until it
// overflowed. The parser now caps nesting at 256 levels.
TEST(Json, DeepNestingRejectedNotStackOverflow) {
  EXPECT_THROW(parse(std::string(100000, '[')), std::runtime_error);
  EXPECT_THROW(parse(std::string(100000, '[') + std::string(100000, ']')),
               std::runtime_error);
  // Mixed array/object nesting hits the same cap.
  std::string alternating;
  for (int i = 0; i < 300; ++i) alternating += "[{\"k\":";
  EXPECT_THROW(parse(alternating), std::runtime_error);
  // 100 levels — far beyond any real shard index — still parses.
  EXPECT_NO_THROW(parse(std::string(100, '[') + std::string(100, ']')));
}

}  // namespace
}  // namespace emlio::json
