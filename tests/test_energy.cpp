// Tests for power models/sources, the Algorithm-1 EnergyMonitor, and reports.
#include <gtest/gtest.h>

#include <thread>

#include "energy/monitor.h"
#include "energy/power_model.h"
#include "energy/power_source.h"
#include "energy/report.h"

namespace emlio::energy {
namespace {

TEST(PowerModel, AffineInUtilization) {
  PowerModel m{"cpu", 50.0, 250.0};
  EXPECT_DOUBLE_EQ(m.watts(0.0), 50.0);
  EXPECT_DOUBLE_EQ(m.watts(1.0), 250.0);
  EXPECT_DOUBLE_EQ(m.watts(0.5), 150.0);
}

TEST(PowerModel, UtilizationClamped) {
  PowerModel m{"cpu", 50.0, 250.0};
  EXPECT_DOUBLE_EQ(m.watts(-1.0), 50.0);
  EXPECT_DOUBLE_EQ(m.watts(2.0), 250.0);
}

TEST(PowerModel, JoulesIntegratesTime) {
  PowerModel m{"gpu", 55.0, 260.0};
  EXPECT_DOUBLE_EQ(m.joules(0.0, 10.0), 550.0);
  EXPECT_NEAR(m.joules(0.561, 156.0), 26471.0, 100.0);  // EMLIO's GPU figure
}

TEST(PowerModel, PresetsHaveSaneOrdering) {
  for (const auto& m :
       {presets::xeon_gold_6126_dual(), presets::xeon_e5_2650v3_dual(), presets::ddr4_192gib(),
        presets::ddr4_64gib(), presets::quadro_rtx_6000(), presets::tesla_p100()}) {
    EXPECT_GT(m.peak_watts, m.idle_watts) << m.component;
    EXPECT_GT(m.idle_watts, 0.0) << m.component;
  }
}

TEST(SyntheticPowerSource, IntegratesAgainstClock) {
  ManualClock clock;
  SyntheticPowerSource src("cpu", clock, 100.0);
  clock.advance(from_seconds(2));
  EXPECT_NEAR(src.read_joules(), 200.0, 1e-9);
  // After a read the accumulator resets.
  clock.advance(from_seconds(1));
  EXPECT_NEAR(src.read_joules(), 100.0, 1e-9);
}

TEST(SyntheticPowerSource, SetWattsSplitsInterval) {
  ManualClock clock;
  SyntheticPowerSource src("cpu", clock, 100.0);
  clock.advance(from_seconds(1));
  src.set_watts(300.0);  // 100 J so far
  clock.advance(from_seconds(1));
  EXPECT_NEAR(src.read_joules(), 400.0, 1e-9);
  EXPECT_DOUBLE_EQ(src.watts(), 300.0);
}

TEST(UtilizationPowerSource, UsesModelAndCallback) {
  ManualClock clock;
  double util = 0.5;
  UtilizationPowerSource src(PowerModel{"gpu", 50, 250}, clock, [&] { return util; });
  clock.advance(from_seconds(2));
  EXPECT_NEAR(src.read_joules(), 300.0, 1e-9);  // 150 W × 2 s
  util = 1.0;
  clock.advance(from_seconds(1));
  EXPECT_NEAR(src.read_joules(), 250.0, 1e-9);
}

TEST(EnergyMonitor, RequiresCpuAndDram) {
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SyntheticPowerSource>("cpu", clock, 10.0);
  EXPECT_THROW(EnergyMonitor(MonitorOptions{}, clock, db, cpu, nullptr), std::invalid_argument);
}

TEST(EnergyMonitor, CollectsBarrierAlignedTuples) {
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SyntheticPowerSource>("cpu", clock, 50.0);
  auto dram = std::make_shared<SyntheticPowerSource>("memory", clock, 5.0);
  auto gpu = std::make_shared<SyntheticPowerSource>("gpu", clock, 100.0);

  MonitorOptions opt;
  opt.node_id = "nodeA";
  opt.interval = from_millis(5);
  opt.write_batch_size = 4;
  EnergyMonitor monitor(opt, clock, db, cpu, dram, gpu);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  monitor.stop();

  auto stats = monitor.stats();
  EXPECT_GE(stats.rounds, 10u);
  EXPECT_GE(stats.points_written, 10u);

  tsdb::Query q;
  q.measurement = "energy";
  q.tag_filter["node_id"] = "nodeA";
  auto rows = db.select(q);
  ASSERT_GE(rows.size(), 10u);
  // Every tuple is coherent: all three components present at one t_k.
  for (const auto& p : rows) {
    EXPECT_TRUE(p.fields.count("cpu_energy"));
    EXPECT_TRUE(p.fields.count("memory_energy"));
    EXPECT_TRUE(p.fields.count("gpu_energy"));
  }
  // Timestamps form a gapless, strictly increasing δ-grid.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].timestamp - rows[i - 1].timestamp, opt.interval);
  }
}

TEST(EnergyMonitor, EnergyConservedWithinTolerance) {
  // Total Joules recorded must match watts × wall time regardless of how
  // samples were sliced or interpolated.
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SyntheticPowerSource>("cpu", clock, 40.0);
  auto dram = std::make_shared<SyntheticPowerSource>("memory", clock, 4.0);

  MonitorOptions opt;
  opt.interval = from_millis(4);
  EnergyMonitor monitor(opt, clock, db, cpu, dram);
  Nanos start = clock.now();
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  monitor.stop();
  Nanos end = clock.now();

  tsdb::Query q;
  q.measurement = "energy";
  double recorded = db.sum(q, "cpu_energy");
  double truth = 40.0 * to_seconds(end - start);
  EXPECT_NEAR(recorded, truth, truth * 0.25);  // sampling edges allow slack
}

TEST(EnergyMonitor, WorksWithoutGpu) {
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SyntheticPowerSource>("cpu", clock, 10.0);
  auto dram = std::make_shared<SyntheticPowerSource>("memory", clock, 1.0);
  MonitorOptions opt;
  opt.interval = from_millis(3);
  EnergyMonitor monitor(opt, clock, db, cpu, dram, nullptr);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  monitor.stop();
  tsdb::Query q;
  q.measurement = "energy";
  auto rows = db.select(q);
  ASSERT_FALSE(rows.empty());
  EXPECT_FALSE(rows[0].fields.count("gpu_energy"));
}

TEST(EnergyMonitor, StartStopIdempotent) {
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SyntheticPowerSource>("cpu", clock, 10.0);
  auto dram = std::make_shared<SyntheticPowerSource>("memory", clock, 1.0);
  MonitorOptions opt;
  opt.interval = from_millis(2);
  EnergyMonitor monitor(opt, clock, db, cpu, dram);
  monitor.start();
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  monitor.stop();
  monitor.stop();
  EXPECT_FALSE(monitor.running());
}

namespace {

/// A power source whose read occasionally stalls longer than the sampling
/// interval — forces the monitor's missed-interval path.
class SlowPowerSource final : public PowerSource {
 public:
  SlowPowerSource(std::string component, Nanos stall_every_n_reads, Nanos stall)
      : component_(std::move(component)), every_(stall_every_n_reads), stall_(stall) {}
  const std::string& component() const override { return component_; }
  double read_joules() override {
    if (++reads_ % every_ == 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_));
    }
    return 1.0;
  }

 private:
  std::string component_;
  Nanos every_;
  Nanos stall_;
  std::int64_t reads_ = 0;
};

}  // namespace

TEST(EnergyMonitor, InterpolatesMissedIntervals) {
  // Every 3rd read stalls 4× the interval → rounds are skipped; Algorithm 1
  // interpolates the holes so the series stays gapless on the δ-grid.
  tsdb::Database db;
  const auto& clock = SteadyClock::instance();
  auto cpu = std::make_shared<SlowPowerSource>("cpu", 3, from_millis(12));
  auto dram = std::make_shared<SyntheticPowerSource>("memory", clock, 1.0);
  MonitorOptions opt;
  opt.interval = from_millis(3);
  EnergyMonitor monitor(opt, clock, db, cpu, dram);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  monitor.stop();

  EXPECT_GT(monitor.stats().interpolated, 0u);
  tsdb::Query q;
  q.measurement = "energy";
  auto rows = db.select(q);
  ASSERT_GE(rows.size(), 10u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].timestamp - rows[i - 1].timestamp, opt.interval) << i;
  }
}

TEST(EnergyReport, AggregatesPerNodeAndTotal) {
  tsdb::Database db;
  auto add = [&](const std::string& node, Nanos ts, double cpu, double dram, double gpu) {
    tsdb::Point p;
    p.measurement = "energy";
    p.tags["node_id"] = node;
    p.timestamp = ts;
    p.fields["cpu_energy"] = cpu;
    p.fields["memory_energy"] = dram;
    p.fields["gpu_energy"] = gpu;
    db.write(std::move(p));
  };
  for (int i = 0; i < 10; ++i) {
    add("compute0", i * 100, 5.0, 0.5, 12.0);
    add("storage0", i * 100, 3.0, 0.3, 0.0);
  }
  auto report = make_report(db, 0, 1000);
  ASSERT_EQ(report.nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(report.cpu_joules(), 80.0);
  EXPECT_DOUBLE_EQ(report.dram_joules(), 8.0);
  EXPECT_DOUBLE_EQ(report.gpu_joules(), 120.0);
  EXPECT_DOUBLE_EQ(report.total_joules(), 208.0);
  auto text = report.to_string();
  EXPECT_NE(text.find("compute0"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST(EnergyReport, WindowRestrictsAggregation) {
  tsdb::Database db;
  for (int i = 0; i < 10; ++i) {
    tsdb::Point p;
    p.measurement = "energy";
    p.tags["node_id"] = "n";
    p.timestamp = i * 100;
    p.fields["cpu_energy"] = 1.0;
    db.write(std::move(p));
  }
  auto report = make_report(db, 200, 600);
  EXPECT_DOUBLE_EQ(report.cpu_joules(), 4.0);  // ts 200,300,400,500
}

}  // namespace
}  // namespace emlio::energy
