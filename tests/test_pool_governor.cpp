// Tests for the resizable ThreadPool and the shared adaptive pool governor
// (common/pool_governor.h). These run in the ThreadSanitizer CI job: every
// scenario here races resizes against posts, wait_idle and destruction on
// purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/pool_governor.h"
#include "common/thread_pool.h"

namespace emlio {
namespace {

using namespace std::chrono_literals;

/// Poll `pred` until true or the deadline passes.
template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds timeout = 5s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ------------------------------------------------------- resizable ThreadPool

TEST(ThreadPoolResize, GrowSpawnsWorkersImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.target_threads(), 1u);
  pool.set_target_threads(4);
  EXPECT_EQ(pool.target_threads(), 4u);
  EXPECT_EQ(pool.thread_count(), 4u);  // growth is immediate, not cooperative
}

TEST(ThreadPoolResize, GrowUnderLoadRunsEveryTask) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.post([&] {
      std::this_thread::sleep_for(100us);
      done.fetch_add(1, std::memory_order_relaxed);
    });
    if (i == kTasks / 4) pool.set_target_threads(4);
    if (i == kTasks / 2) pool.set_target_threads(6);
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(pool.target_threads(), 6u);
}

TEST(ThreadPoolResize, ShrinkToOneWhileTasksQueuedLosesNothing) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 120;
  for (int i = 0; i < kTasks; ++i) {
    pool.post([&] {
      std::this_thread::sleep_for(200us);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.set_target_threads(1);  // queue is still deep: every task must run
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
  // Retire-on-park: with the queue drained the surplus workers park and
  // leave; the pool converges to exactly one live worker.
  EXPECT_TRUE(eventually([&] { return pool.thread_count() == 1; }))
      << "live workers: " << pool.thread_count();
  // The shrunken pool still works.
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolResize, WaitIdleRacingResizes) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::atomic<int> done{0};
  std::thread resizer([&] {
    std::size_t widths[] = {1, 4, 2, 6, 1, 3};
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      pool.set_target_threads(widths[i % 6]);
      std::this_thread::sleep_for(500us);
    }
  });
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 25; ++i) {
      pool.post([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();  // must return despite concurrent grows and shrinks
    EXPECT_EQ(done.load(), (round + 1) * 25);
  }
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
}

TEST(ThreadPoolResize, DestructorAfterShrinkJoinsParkedRetirees) {
  // Shrink, let retirees park (their handles wait in the pool), then destroy
  // without another resize: the destructor must join every thread, retired
  // or live, without deadlock or leak (TSan/ASan verify).
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(6);
    std::atomic<int> done{0};
    for (int i = 0; i < 30; ++i) {
      pool.post([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.set_target_threads(1);
    if (round % 2 == 0) pool.wait_idle();
    // Destructor runs here, possibly with tasks still queued (odd rounds) —
    // it drains them first, so the count always lands.
  }
}

TEST(ThreadPoolResize, RepeatedResizeReapsRetiredHandles) {
  // Oscillate hard; every shrink's retirees must be reaped by a later
  // resize or the destructor. Mostly an ASan/TSan leak/race probe.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 40; ++i) {
    pool.set_target_threads(i % 2 ? 5 : 1);
    pool.post([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 40);
}

TEST(ThreadPoolResize, ZeroTargetClampedToOne) {
  ThreadPool pool(2);
  pool.set_target_threads(0);
  EXPECT_EQ(pool.target_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

// ------------------------------------------------------------- PoolGovernor

PoolGovernorConfig fast_config(std::size_t min_threads, std::size_t max_threads) {
  PoolGovernorConfig gc;
  gc.min_threads = min_threads;
  gc.max_threads = max_threads;
  gc.interval = std::chrono::milliseconds(1);
  gc.min_events = 4;
  gc.cooldown_windows = 1;
  return gc;
}

/// Bump `counter` every few hundred microseconds until stopped — a synthetic
/// stall signal strong enough to dominate every control window.
class SignalPump {
 public:
  explicit SignalPump(std::atomic<std::uint64_t>& counter)
      : thread_([this, &counter] {
          while (!stop_.load(std::memory_order_relaxed)) {
            counter.fetch_add(3, std::memory_order_relaxed);
            std::this_thread::sleep_for(200us);
          }
        }) {}
  ~SignalPump() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(PoolGovernor, GrowsToMaxWhenGrowSignalDominates) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernor governor("test/grow", pool, grow, shrink, fast_config(1, 4));
  SignalPump pump(grow);
  EXPECT_TRUE(eventually([&] { return governor.stats().threads_current == 4; }))
      << "stuck at " << governor.stats().threads_current;
  auto s = governor.stats();
  EXPECT_GE(s.resizes, 3u);   // 1 -> 2 -> 3 -> 4
  EXPECT_GE(s.grows, 3u);
  EXPECT_EQ(s.threads_peak, 4u);
  EXPECT_TRUE(eventually([&] { return pool.thread_count() == 4; }));
}

TEST(PoolGovernor, ShrinksToMinWhenShrinkSignalDominates) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernor governor("test/shrink", pool, grow, shrink, fast_config(1, 4));
  SignalPump pump(shrink);
  EXPECT_TRUE(eventually([&] { return governor.stats().threads_current == 1; }))
      << "stuck at " << governor.stats().threads_current;
  auto s = governor.stats();
  EXPECT_GE(s.shrinks, 3u);  // 4 -> 3 -> 2 -> 1
  EXPECT_EQ(s.threads_peak, 4u);  // the starting width was the widest
  EXPECT_TRUE(eventually([&] { return pool.thread_count() == 1; }));
}

TEST(PoolGovernor, BalancedSignalsHoldTheSize) {
  // Both signals advance in lockstep (bumped together, from one thread), so
  // EVERY control window sees a 50/50 split: neither side reaches dominance
  // and the dead band holds the width — the no-flap guarantee. Bumps of 1
  // keep the worst-case snapshot skew (a window boundary landing between the
  // two fetch_adds) to a single event, which can never tip a >=min_events
  // window past the 0.65 dominance threshold.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernor governor("test/balanced", pool, grow, shrink, fast_config(1, 4));
  auto deadline = std::chrono::steady_clock::now() + 100ms;  // ~100 windows
  while (std::chrono::steady_clock::now() < deadline) {
    grow.fetch_add(1, std::memory_order_relaxed);
    shrink.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(50us);
  }
  auto s = governor.stats();
  EXPECT_EQ(s.resizes, 0u);
  EXPECT_EQ(s.threads_current, 2u);
}

TEST(PoolGovernor, QuietWindowsHoldTheSize) {
  // No stall evidence at all (< min_events per window): no resizes.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernor governor("test/quiet", pool, grow, shrink, fast_config(1, 8));
  std::this_thread::sleep_for(50ms);
  grow.fetch_add(1, std::memory_order_relaxed);  // below min_events
  std::this_thread::sleep_for(50ms);
  auto s = governor.stats();
  EXPECT_EQ(s.resizes, 0u);
  EXPECT_EQ(s.threads_current, 3u);
  EXPECT_EQ(s.threads_peak, 3u);
}

TEST(PoolGovernor, RespectsBounds) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernor governor("test/bounds", pool, grow, shrink, fast_config(2, 3));
  {
    SignalPump pump(grow);
    EXPECT_TRUE(eventually([&] { return governor.stats().threads_current == 3; }));
    std::this_thread::sleep_for(20ms);  // keep pushing against the ceiling
  }
  EXPECT_EQ(governor.stats().threads_current, 3u);
  {
    SignalPump pump(shrink);
    EXPECT_TRUE(eventually([&] { return governor.stats().threads_current == 2; }));
    std::this_thread::sleep_for(20ms);  // and against the floor
  }
  EXPECT_EQ(governor.stats().threads_current, 2u);
  EXPECT_EQ(governor.stats().threads_peak, 3u);
}

TEST(PoolGovernor, StopIsIdempotentAndFreezesStats) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  auto governor =
      std::make_unique<PoolGovernor>("test/stop", pool, grow, shrink, fast_config(1, 4));
  {
    SignalPump pump(grow);
    EXPECT_TRUE(eventually([&] { return governor->stats().resizes >= 1; }));
  }
  governor->stop();
  governor->stop();  // idempotent
  auto frozen = governor->stats();
  grow.fetch_add(1000, std::memory_order_relaxed);
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(governor->stats().resizes, frozen.resizes);  // no thread, no steps
  governor.reset();  // dtor after stop() is fine too
}

TEST(PoolGovernor, GovernedPoolStillRunsEveryTask) {
  // Resizes mid-stream must never lose work: run a governed pool under load
  // with an alternating signal and count completions.
  ThreadPool pool(1);
  std::atomic<std::uint64_t> grow{0}, shrink{0};
  PoolGovernorConfig gc = fast_config(1, 6);
  PoolGovernor governor("test/load", pool, grow, shrink, gc);
  std::atomic<int> done{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    pool.post([&] {
      std::this_thread::sleep_for(50us);
      done.fetch_add(1, std::memory_order_relaxed);
    });
    // Alternate which signal dominates so the governor grows AND shrinks
    // while tasks are in flight.
    auto& signal = (i / 100) % 2 ? shrink : grow;
    signal.fetch_add(1, std::memory_order_relaxed);
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace emlio
