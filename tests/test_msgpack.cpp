// Unit + property tests for the MessagePack codec and the batch wire format.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "msgpack/batch_codec.h"
#include "msgpack/msgpack.h"

namespace emlio::msgpack {
namespace {

std::vector<std::uint8_t> enc(const Value& v) { return encode(v); }

TEST(Msgpack, NilBoolWireBytes) {
  EXPECT_EQ(enc(Value(nullptr)), (std::vector<std::uint8_t>{0xC0}));
  EXPECT_EQ(enc(Value(true)), (std::vector<std::uint8_t>{0xC3}));
  EXPECT_EQ(enc(Value(false)), (std::vector<std::uint8_t>{0xC2}));
}

TEST(Msgpack, PositiveFixintWire) {
  EXPECT_EQ(enc(Value(0)), (std::vector<std::uint8_t>{0x00}));
  EXPECT_EQ(enc(Value(127)), (std::vector<std::uint8_t>{0x7F}));
}

TEST(Msgpack, NegativeFixintWire) {
  EXPECT_EQ(enc(Value(-1)), (std::vector<std::uint8_t>{0xFF}));
  EXPECT_EQ(enc(Value(-32)), (std::vector<std::uint8_t>{0xE0}));
}

TEST(Msgpack, IntWidthSelection) {
  EXPECT_EQ(enc(Value(128))[0], 0xCC);               // uint8
  EXPECT_EQ(enc(Value(256))[0], 0xCD);               // uint16
  EXPECT_EQ(enc(Value(70000))[0], 0xCE);             // uint32
  EXPECT_EQ(enc(Value(std::uint64_t(1) << 40))[0], 0xCF);  // uint64
  EXPECT_EQ(enc(Value(-33))[0], 0xD0);               // int8
  EXPECT_EQ(enc(Value(-1000))[0], 0xD1);             // int16
  EXPECT_EQ(enc(Value(-100000))[0], 0xD2);           // int32
  EXPECT_EQ(enc(Value(std::int64_t(-1) << 40))[0], 0xD3);  // int64
}

TEST(Msgpack, FixstrWire) {
  auto bytes = enc(Value("abc"));
  EXPECT_EQ(bytes[0], 0xA3);
  EXPECT_EQ(bytes.size(), 4u);
}

TEST(Msgpack, StringWidths) {
  EXPECT_EQ(enc(Value(std::string(40, 'x')))[0], 0xD9);    // str8
  EXPECT_EQ(enc(Value(std::string(300, 'x')))[0], 0xDA);   // str16
  EXPECT_EQ(enc(Value(std::string(70000, 'x')))[0], 0xDB); // str32
}

TEST(Msgpack, BinWidths) {
  EXPECT_EQ(enc(Value(Bin(10, 0)))[0], 0xC4);
  EXPECT_EQ(enc(Value(Bin(300, 0)))[0], 0xC5);
  EXPECT_EQ(enc(Value(Bin(70000, 0)))[0], 0xC6);
}

TEST(Msgpack, ArrayAndMapHeaders) {
  EXPECT_EQ(enc(Value(Array{}))[0], 0x90);
  EXPECT_EQ(enc(Value(Array(20, Value(1))))[0], 0xDC);
  Map small{{"k", Value(1)}};
  EXPECT_EQ(enc(Value(small))[0], 0x81);
}

TEST(Msgpack, RoundTripScalars) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 127LL, 128LL, -32LL, -33LL, 65535LL, -65536LL,
                         1LL << 40, -(1LL << 40)}) {
    auto decoded = decode(enc(Value(v)));
    EXPECT_EQ(decoded.as_int(), v) << v;
  }
}

TEST(Msgpack, RoundTripUint64Max) {
  std::uint64_t big = ~0ull;
  EXPECT_EQ(decode(enc(Value(big))).as_uint(), big);
}

TEST(Msgpack, RoundTripDouble) {
  for (double v : {0.0, -2.5, 3.14159, 1e300, -1e-300}) {
    EXPECT_DOUBLE_EQ(decode(enc(Value(v))).as_double(), v);
  }
}

TEST(Msgpack, RoundTripNested) {
  Map m;
  m["list"] = Value(Array{Value(1), Value("two"), Value(Bin{1, 2, 3})});
  m["inner"] = Value(Map{{"x", Value(true)}});
  auto d = decode(enc(Value(m)));
  EXPECT_EQ(d.at("list").as_array()[1].as_string(), "two");
  EXPECT_EQ(d.at("list").as_array()[2].as_bin(), (Bin{1, 2, 3}));
  EXPECT_TRUE(d.at("inner").at("x").as_bool());
}

TEST(Msgpack, DecodeTruncatedThrows) {
  auto bytes = enc(Value("hello world"));
  // Clamped subtraction: GCC 12 flags a bare size()-3 resize as a possible
  // wraparound (stringop-overflow) under -O3 -fsanitize=address.
  bytes.resize(bytes.size() < 3 ? 0 : bytes.size() - 3);
  EXPECT_THROW(decode(bytes), std::out_of_range);
}

TEST(Msgpack, TypeAccessorsThrow) {
  auto v = decode(enc(Value(5)));
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_map(), std::runtime_error);
  EXPECT_THROW(Value(-1).as_uint(), std::runtime_error);
}

// Property-style round-trip over randomly generated value trees.
class MsgpackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

Value random_value(Rng& rng, int depth) {
  std::uint64_t kind = rng.uniform(depth > 3 ? 6 : 8);
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.uniform(2) == 1);
    case 2: return Value(static_cast<std::int64_t>(rng()) >> rng.uniform(40));
    case 3: return Value(rng.normal(0, 1e6));
    case 4: {
      std::string s;
      for (std::uint64_t i = rng.uniform(40); i > 0; --i)
        s += static_cast<char>('a' + rng.uniform(26));
      return Value(std::move(s));
    }
    case 5: {
      Bin b(rng.uniform(64));
      for (auto& x : b) x = static_cast<std::uint8_t>(rng());
      return Value(std::move(b));
    }
    case 6: {
      Array a;
      for (std::uint64_t i = rng.uniform(5); i > 0; --i) a.push_back(random_value(rng, depth + 1));
      return Value(std::move(a));
    }
    default: {
      Map m;
      for (std::uint64_t i = rng.uniform(5); i > 0; --i) {
        m["k" + std::to_string(rng.uniform(100))] = random_value(rng, depth + 1);
      }
      return Value(std::move(m));
    }
  }
}

TEST_P(MsgpackPropertyTest, RandomTreeRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Value v = random_value(rng, 0);
    Value back = decode(encode(v));
    EXPECT_TRUE(back == v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsgpackPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ------------------------------------------------------------ batch codec

msgpack::WireBatch make_batch(std::size_t samples, std::size_t bytes_each) {
  WireBatch b;
  b.epoch = 2;
  b.batch_id = 77;
  b.node_id = 1;
  b.shard_id = 3;
  Rng rng(5);
  for (std::size_t i = 0; i < samples; ++i) {
    WireSample s;
    s.index = 1000 + i;
    s.label = static_cast<std::int64_t>(i % 10);
    std::vector<std::uint8_t> payload(bytes_each);
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng());
    s.bytes = std::move(payload);
    b.samples.push_back(std::move(s));
  }
  return b;
}

TEST(BatchCodec, RoundTrip) {
  auto b = make_batch(8, 100);
  auto decoded = BatchCodec::decode(BatchCodec::encode(b));
  EXPECT_EQ(decoded, b);
}

TEST(BatchCodec, EmptyBatchRoundTrip) {
  WireBatch b;
  b.epoch = 1;
  auto decoded = BatchCodec::decode(BatchCodec::encode(b));
  EXPECT_EQ(decoded, b);
}

TEST(BatchCodec, SentinelMarksEpochEnd) {
  auto s = BatchCodec::make_sentinel(4, 9);
  EXPECT_TRUE(s.last);
  EXPECT_EQ(s.node_id, 4u);
  EXPECT_EQ(s.epoch, 9u);
  EXPECT_TRUE(s.samples.empty());
  auto decoded = BatchCodec::decode(BatchCodec::encode(s));
  EXPECT_TRUE(decoded.last);
}

TEST(BatchCodec, PayloadBytesSumsSamples) {
  auto b = make_batch(4, 250);
  EXPECT_EQ(b.payload_bytes(), 1000u);
}

TEST(BatchCodec, EncodingOverheadIsSmall) {
  auto b = make_batch(32, 4096);
  auto encoded = BatchCodec::encode(b);
  // Per-sample overhead must stay far below the paper's point that msgpack
  // is "compact": < 32 bytes per sample on top of the payload.
  EXPECT_LT(encoded.size(), b.payload_bytes() + 32 * b.samples.size() + 128);
}

TEST(BatchCodec, RejectsGarbage) {
  std::vector<std::uint8_t> garbage{0x81, 0xA1, 0x76, 0x01};  // {"v": 1} missing keys
  EXPECT_THROW(BatchCodec::decode(garbage), std::runtime_error);
  EXPECT_THROW(BatchCodec::decode(std::vector<std::uint8_t>{0x01}), std::runtime_error);
}

TEST(BatchCodec, RejectsWrongVersion) {
  // Craft a batch, then corrupt the version by re-encoding through the
  // generic msgpack layer.
  auto b = make_batch(1, 4);
  Value root = decode(BatchCodec::encode(b));
  Map m = root.as_map();
  m["v"] = Value(static_cast<std::uint64_t>(99));
  EXPECT_THROW(BatchCodec::decode(encode(Value(m))), std::runtime_error);
}

TEST(BatchCodec, LargeSampleRoundTrip) {
  auto b = make_batch(1, 2'000'000);  // the synthetic 2 MB record
  auto decoded = BatchCodec::decode(BatchCodec::encode(b));
  EXPECT_EQ(decoded.samples[0].bytes.size(), 2'000'000u);
  EXPECT_EQ(decoded, b);
}

TEST(BatchCodec, RejectsTruncationAtEveryPrefixLength) {
  // Property: EVERY strict prefix of a valid encoding must throw (truncation
  // is detected wherever the cut lands: mid-header, mid-key, mid-bin).
  auto payload = BatchCodec::encode(make_batch(3, 50));
  auto bytes = payload.to_vector();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW(BatchCodec::decode(prefix), std::exception) << "prefix length " << len;
  }
  // The full message still decodes.
  EXPECT_NO_THROW(BatchCodec::decode(payload));
}

// Fuzz regression: a length header may announce up to 4 GiB of payload that
// the buffer does not contain. Truncation must surface as the ByteReader's
// bounds check, never as a huge allocation or an out-of-bounds read.
TEST(Msgpack, HugeLengthHeadersRejectedBeforeAllocation) {
  // str32 / bin32 / array32 / map32 announcing 0xFFFFFFFF elements, then EOF.
  for (std::uint8_t tag : {0xDB, 0xC6, 0xDD, 0xDF}) {
    std::vector<std::uint8_t> bytes{tag, 0xFF, 0xFF, 0xFF, 0xFF};
    EXPECT_THROW(decode(bytes), std::exception) << "tag 0x" << std::hex << int(tag);
    Decoder skipper(bytes);
    EXPECT_THROW(skipper.skip_value(), std::exception) << "tag 0x" << std::hex << int(tag);
  }
}

// Fuzz regression: nesting is recursion, so both the decoder and skip_value
// bound depth (a [[[[... bomb must throw, not exhaust the stack).
TEST(Msgpack, NestingDepthCappedOnDecodeAndSkip) {
  std::vector<std::uint8_t> bomb(600, 0x91);  // 600 nested one-element arrays
  bomb.push_back(0xC0);
  EXPECT_THROW(decode(bomb), std::runtime_error);
  Decoder skipper(bomb);
  EXPECT_THROW(skipper.skip_value(), std::runtime_error);
  // 16 levels is comfortably inside the cap.
  std::vector<std::uint8_t> shallow(16, 0x91);
  shallow.push_back(0xC0);
  EXPECT_NO_THROW(decode(shallow));
}

// Fuzz regression: a fixmap whose key slot holds a non-string value must be
// a clean schema error (Map keys are strings in this implementation).
TEST(Msgpack, TruncatedAndNonStringKeyMapsRejected) {
  const std::vector<std::uint8_t> int_key{0x81, 0x07, 0xC0};  // {7: nil}
  EXPECT_THROW(decode(int_key), std::runtime_error);
  const std::vector<std::uint8_t> half_pair{0x81, 0xA1, 'k'};  // {"k": <EOF>
  EXPECT_THROW(decode(half_pair), std::exception);
  const std::vector<std::uint8_t> missing_entry{0x82, 0xA1, 'k', 0xC0};  // 2 pairs, 1 present
  EXPECT_THROW(decode(missing_entry), std::exception);
}

TEST(BatchCodec, RejectsMalformedSchemaVariants) {
  auto base = decode(BatchCodec::encode(make_batch(2, 8))).as_map();

  auto corrupted = [&](auto&& mutate) {
    Map m = base;
    mutate(m);
    return encode(Value(m));
  };

  // Root is not a map.
  EXPECT_THROW(BatchCodec::decode(encode(Value(std::int64_t(7)))), std::runtime_error);
  // Field with the wrong wire type.
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) { m["epoch"] = Value("not-a-uint"); })),
               std::runtime_error);
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) { m["last"] = Value(std::int64_t(1)); })),
               std::runtime_error);
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) { m["samples"] = Value("nope"); })),
               std::runtime_error);
  // Missing required field.
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) { m.erase("nsent"); })),
               std::runtime_error);
  // Sample tuple with the wrong arity.
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) {
                 Array bad_tuple{Value(std::uint64_t(1)), Value(std::int64_t(2))};
                 m["samples"] = Value(Array{Value(std::move(bad_tuple))});
               })),
               std::runtime_error);
  // Sample bytes that are not a bin.
  EXPECT_THROW(BatchCodec::decode(corrupted([](Map& m) {
                 Array tuple{Value(std::uint64_t(1)), Value(std::int64_t(2)), Value("str")};
                 m["samples"] = Value(Array{Value(std::move(tuple))});
               })),
               std::runtime_error);
}

TEST(BatchCodec, WrongVersionDiagnosedBeforeSchemaDrift) {
  // A v99 sender that ALSO changed a field's type must be reported as a
  // version mismatch, not as the schema error the drift causes first.
  Map m = decode(BatchCodec::encode(make_batch(1, 4))).as_map();
  m["v"] = Value(static_cast<std::uint64_t>(99));
  m["last"] = Value(std::int64_t(1));  // schema drift: bool → int
  try {
    BatchCodec::decode(encode(Value(m)));
    FAIL() << "expected decode to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("wire version 99"), std::string::npos) << e.what();
  }
}

TEST(BatchCodec, RejectsDuplicateKeys) {
  // A duplicated "samples" key must not concatenate into a 2N-sample batch.
  auto b = make_batch(2, 8);
  ByteBuffer raw;
  Encoder enc(raw);
  enc.pack_map_header(9);
  auto pack_samples = [&] {
    enc.pack_string("samples");
    enc.pack_array_header(b.samples.size());
    for (const auto& s : b.samples) {
      enc.pack_array_header(3);
      enc.pack_uint(s.index);
      enc.pack_int(s.label);
      enc.pack_bin(s.bytes);
    }
  };
  enc.pack_string("batch");
  enc.pack_uint(b.batch_id);
  enc.pack_string("epoch");
  enc.pack_uint(b.epoch);
  enc.pack_string("last");
  enc.pack_bool(b.last);
  enc.pack_string("node");
  enc.pack_uint(b.node_id);
  enc.pack_string("nsent");
  enc.pack_uint(b.sent_count);
  pack_samples();
  pack_samples();  // duplicate!
  enc.pack_string("shard");
  enc.pack_uint(b.shard_id);
  enc.pack_string("v");
  enc.pack_uint(1);
  EXPECT_THROW(BatchCodec::decode(raw.view()), std::runtime_error);
}

TEST(BatchCodec, ToleratesUnknownKeys) {
  // Forward compatibility: an extra key from a newer sender is skipped.
  Map m = decode(BatchCodec::encode(make_batch(1, 4))).as_map();
  m["future_field"] = Value(Array{Value("x"), Value(std::int64_t(1))});
  auto decoded = BatchCodec::decode(encode(Value(m)));
  EXPECT_EQ(decoded.samples.size(), 1u);
}

TEST(BatchCodec, DecodeIsZeroCopyIntoSharedPayload) {
  auto b = make_batch(8, 4096);
  Payload encoded = BatchCodec::encode(b);
  PayloadCounters::reset();
  auto decoded = BatchCodec::decode(encoded);
  // No deliberate deep copies happened anywhere in the decode path...
  EXPECT_EQ(PayloadCounters::bytes_copied.load(), 0u);
  ASSERT_EQ(decoded.samples.size(), 8u);
  for (const auto& s : decoded.samples) {
    // ...every sample shares the message's refcounted storage...
    EXPECT_TRUE(s.bytes.shares_storage_with(encoded));
    // ...and points INTO the encoded buffer.
    EXPECT_GE(s.bytes.data(), encoded.data());
    EXPECT_LE(s.bytes.data() + s.bytes.size(), encoded.data() + encoded.size());
  }
  // 1 handle + 8 sample views.
  EXPECT_EQ(encoded.use_count(), 9);
}

TEST(BatchCodec, PooledEncodeRecyclesBuffers) {
  auto pool = BufferPool::create(4);
  auto b = make_batch(4, 1000);
  for (int round = 0; round < 5; ++round) {
    Payload p = BatchCodec::encode(b, *pool);
    EXPECT_EQ(BatchCodec::decode(p), b);
  }  // payload dropped each round → storage returns to the pool
  auto stats = pool->stats();
  EXPECT_EQ(stats.allocated, 1u);  // first round allocates...
  EXPECT_EQ(stats.reused, 4u);     // ...the rest reuse it
  EXPECT_EQ(stats.idle, 1u);
}

TEST(BatchCodec, PooledBufferSurvivesPoolDestruction) {
  Payload p;
  {
    auto pool = BufferPool::create(4);
    p = BatchCodec::encode(make_batch(1, 32), *pool);
  }  // pool gone; payload must remain valid (storage frees on last drop)
  EXPECT_EQ(BatchCodec::decode(p).samples.size(), 1u);
}

TEST(BatchCodec, EncodeAcceptsBorrowedMmapStyleViews) {
  // The daemon encodes samples whose bytes borrow mmap'd memory; the wire
  // bytes must be identical to encoding owned copies of the same data.
  std::vector<std::uint8_t> backing(512);
  for (std::size_t i = 0; i < backing.size(); ++i) backing[i] = static_cast<std::uint8_t>(i);

  WireBatch borrowed;
  WireSample s1;
  s1.index = 1;
  s1.bytes = std::span<const std::uint8_t>(backing.data(), 256);  // borrows
  borrowed.samples.push_back(std::move(s1));

  WireBatch owned;
  WireSample s2;
  s2.index = 1;
  s2.bytes = std::vector<std::uint8_t>(backing.begin(), backing.begin() + 256);  // adopts
  owned.samples.push_back(std::move(s2));

  EXPECT_FALSE(borrowed.samples[0].bytes.owns_storage());
  EXPECT_TRUE(owned.samples[0].bytes.owns_storage());
  EXPECT_EQ(BatchCodec::encode(borrowed), BatchCodec::encode(owned).view());
}

class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, RoundTripAtSize) {
  auto b = make_batch(GetParam(), 64);
  EXPECT_EQ(BatchCodec::decode(BatchCodec::encode(b)), b);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep, ::testing::Values(1, 2, 15, 16, 17, 128, 300));

}  // namespace
}  // namespace emlio::msgpack
