// Tests for tensors, preprocessing ops and the async DALI-style pipeline.
#include <gtest/gtest.h>

#include <array>

#include "pipeline/ops.h"
#include "pipeline/pipeline.h"
#include "workload/sample_generator.h"

namespace emlio::pipeline {
namespace {

TEST(Tensor, ZerosAndIndexing) {
  auto t = Tensor::zeros(4, 5, 3);
  EXPECT_EQ(t.size(), 60u);
  t.at(2, 3, 1) = 7.5f;
  EXPECT_FLOAT_EQ(t.at(2, 3, 1), 7.5f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(Tensor, MeanAndStddev) {
  auto t = Tensor::zeros(1, 4, 1);
  t.data = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(t.mean(), 2.5);
  EXPECT_NEAR(t.stddev(), 1.1180, 1e-3);
}

Tensor gradient_image(std::uint32_t h, std::uint32_t w) {
  auto t = Tensor::zeros(h, w, 3);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      for (std::uint32_t c = 0; c < 3; ++c) {
        t.at(y, x, c) = static_cast<float>(x + y * w + c);
      }
    }
  }
  return t;
}

TEST(Ops, DecodeValidSample) {
  workload::SampleGenerator gen(workload::presets::tiny(4, 2000));
  auto bytes = gen.generate(2);
  auto d = decode(bytes, gen.label(2), 16, 16);
  EXPECT_TRUE(d.checksum_ok);
  EXPECT_EQ(d.sample_index, 2u);
  EXPECT_EQ(d.image.height, 16u);
  EXPECT_EQ(d.image.width, 16u);
  EXPECT_EQ(d.image.channels, 3u);
  // Pixels are in [0,255] and not all identical.
  EXPECT_GT(d.image.stddev(), 0.0);
  for (float v : d.image.data) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
  }
}

TEST(Ops, DecodeDeterministic) {
  workload::SampleGenerator gen(workload::presets::tiny(4, 2000));
  auto bytes = gen.generate(1);
  auto a = decode(bytes, 0, 8, 8);
  auto b = decode(bytes, 0, 8, 8);
  EXPECT_EQ(a.image.data, b.image.data);
}

TEST(Ops, DecodeFlagsCorruption) {
  workload::SampleGenerator gen(workload::presets::tiny(4, 2000));
  auto bytes = gen.generate(0);
  bytes[500] ^= 0xFF;
  auto d = decode(bytes, 0);
  EXPECT_FALSE(d.checksum_ok);
}

TEST(Ops, ResizeIdentityWhenSameSize) {
  auto img = gradient_image(8, 8);
  auto out = resize(img, 8, 8);
  for (std::size_t i = 0; i < img.data.size(); ++i) {
    EXPECT_NEAR(out.data[i], img.data[i], 1e-4);
  }
}

TEST(Ops, ResizeDownPreservesRange) {
  auto img = gradient_image(16, 16);
  auto out = resize(img, 4, 4);
  EXPECT_EQ(out.height, 4u);
  EXPECT_EQ(out.width, 4u);
  double lo = 1e9, hi = -1e9;
  for (float v : img.data) {
    lo = std::min<double>(lo, v);
    hi = std::max<double>(hi, v);
  }
  for (float v : out.data) {
    EXPECT_GE(v, lo - 1e-3);
    EXPECT_LE(v, hi + 1e-3);
  }
}

TEST(Ops, ResizeUpInterpolates) {
  auto img = Tensor::zeros(2, 2, 1);
  img.data = {0, 10, 20, 30};
  auto out = resize(img, 4, 4);
  EXPECT_EQ(out.size(), 16u);
  // Interior values must lie strictly between the corner extremes.
  EXPECT_GT(out.at(1, 1, 0), 0.0f);
  EXPECT_LT(out.at(2, 2, 0), 30.0f);
}

TEST(Ops, CropExtractsRegion) {
  auto img = gradient_image(10, 10);
  auto out = crop(img, 2, 3, 4, 5);
  EXPECT_EQ(out.height, 4u);
  EXPECT_EQ(out.width, 5u);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), img.at(2, 3, 0));
  EXPECT_FLOAT_EQ(out.at(3, 4, 2), img.at(5, 7, 2));
}

TEST(Ops, CropBoundsChecked) {
  auto img = gradient_image(10, 10);
  EXPECT_THROW(crop(img, 8, 0, 4, 4), std::out_of_range);
  EXPECT_THROW(crop(img, 0, 8, 4, 4), std::out_of_range);
}

TEST(Ops, MirrorReversesColumns) {
  auto img = gradient_image(3, 4);
  auto out = mirror(img, true);
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      EXPECT_FLOAT_EQ(out.at(y, x, 0), img.at(y, 3 - x, 0));
    }
  }
  auto same = mirror(img, false);
  EXPECT_EQ(same.data, img.data);
}

TEST(Ops, MirrorIsInvolution) {
  auto img = gradient_image(5, 7);
  auto twice = mirror(mirror(img, true), true);
  EXPECT_EQ(twice.data, img.data);
}

TEST(Ops, NormalizeStatistics) {
  auto img = gradient_image(8, 8);
  std::array<float, 3> mean{}, stddev{};
  for (std::uint32_t c = 0; c < 3; ++c) {
    double m = 0;
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t x = 0; x < 8; ++x) m += img.at(y, x, c);
    mean[c] = static_cast<float>(m / 64.0);
    stddev[c] = 10.0f;
  }
  auto out = normalize(img, mean, stddev);
  // Per-channel mean ≈ 0 after normalization.
  for (std::uint32_t c = 0; c < 3; ++c) {
    double m = 0;
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t x = 0; x < 8; ++x) m += out.at(y, x, c);
    EXPECT_NEAR(m / 64.0, 0.0, 1e-4);
  }
}

TEST(Ops, NormalizeValidatesChannelCount) {
  auto img = gradient_image(2, 2);
  std::array<float, 2> wrong{1.0f, 1.0f};
  EXPECT_THROW(normalize(img, wrong, wrong), std::invalid_argument);
}

// ------------------------------------------------------------- pipeline

msgpack::WireBatch make_wire_batch(std::uint32_t epoch, std::uint64_t id, std::size_t n) {
  workload::SampleGenerator gen(workload::presets::tiny(64, 1500));
  msgpack::WireBatch b;
  b.epoch = epoch;
  b.batch_id = id;
  for (std::size_t i = 0; i < n; ++i) {
    msgpack::WireSample s;
    s.index = id * 100 + i;
    s.label = gen.label(s.index);
    s.bytes = gen.generate(s.index);
    b.samples.push_back(std::move(s));
  }
  return b;
}

ExternalSource batch_sequence(std::vector<msgpack::WireBatch> batches) {
  auto state = std::make_shared<std::pair<std::vector<msgpack::WireBatch>, std::size_t>>(
      std::move(batches), 0);
  return [state]() -> std::optional<msgpack::WireBatch> {
    if (state->second >= state->first.size()) return std::nullopt;
    return state->first[state->second++];
  };
}

TEST(Pipeline, PreservesBatchOrderWithParallelWorkers) {
  std::vector<msgpack::WireBatch> batches;
  for (std::uint64_t i = 0; i < 12; ++i) batches.push_back(make_wire_batch(0, i, 4));
  PipelineConfig cfg;
  cfg.num_threads = 3;
  cfg.prefetch_depth = 2;
  Pipeline pipe(cfg, batch_sequence(std::move(batches)));
  for (std::uint64_t i = 0; i < 12; ++i) {
    auto out = pipe.run();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->batch_id, i);
    EXPECT_EQ(out->samples.size(), 4u);
  }
  EXPECT_FALSE(pipe.run().has_value());
  auto stats = pipe.stats();
  EXPECT_EQ(stats.batches, 12u);
  EXPECT_EQ(stats.samples, 48u);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

TEST(Pipeline, AppliesCropAndNormalize) {
  std::vector<msgpack::WireBatch> batches{make_wire_batch(0, 0, 2)};
  PipelineConfig cfg;
  cfg.decode_height = 32;
  cfg.decode_width = 32;
  cfg.crop = 28;
  Pipeline pipe(cfg, batch_sequence(std::move(batches)));
  auto out = pipe.run();
  ASSERT_TRUE(out.has_value());
  const auto& img = out->samples[0].image;
  EXPECT_EQ(img.height, 28u);
  EXPECT_EQ(img.width, 28u);
  // Normalized values are roughly centred.
  EXPECT_NEAR(img.mean(), 0.0, 1.0);
}

TEST(Pipeline, PassesThroughEpochMarkers) {
  std::vector<msgpack::WireBatch> batches;
  batches.push_back(make_wire_batch(0, 0, 2));
  msgpack::WireBatch marker;
  marker.epoch = 0;
  marker.last = true;
  batches.push_back(marker);
  batches.push_back(make_wire_batch(1, 0, 2));
  Pipeline pipe(PipelineConfig{}, batch_sequence(std::move(batches)));
  EXPECT_FALSE(pipe.run()->epoch_end);
  auto m = pipe.run();
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->epoch_end);
  EXPECT_EQ(pipe.run()->epoch, 1u);
}

TEST(Pipeline, CountsChecksumFailures) {
  auto batch = make_wire_batch(0, 0, 3);
  // Payload views are immutable; corrupting a byte means materializing a
  // mutable copy and swapping it in.
  auto corrupted = batch.samples[1].bytes.to_vector();
  corrupted[200] ^= 0xFF;
  batch.samples[1].bytes = std::move(corrupted);
  Pipeline pipe(PipelineConfig{}, batch_sequence({batch}));
  auto out = pipe.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(pipe.stats().checksum_failures, 1u);
}

TEST(Pipeline, WarmUpFillsPrefetchQueue) {
  std::vector<msgpack::WireBatch> batches;
  for (std::uint64_t i = 0; i < 8; ++i) batches.push_back(make_wire_batch(0, i, 2));
  PipelineConfig cfg;
  cfg.prefetch_depth = 4;
  Pipeline pipe(cfg, batch_sequence(std::move(batches)));
  pipe.warm_up();
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(pipe.run().has_value());
}

TEST(Pipeline, ShutdownIsIdempotentAndUnblocks) {
  std::vector<msgpack::WireBatch> batches{make_wire_batch(0, 0, 1)};
  Pipeline pipe(PipelineConfig{}, batch_sequence(std::move(batches)));
  pipe.shutdown();
  pipe.shutdown();
}

TEST(Pipeline, DeterministicAugmentationPerSample) {
  auto batch = make_wire_batch(0, 0, 3);
  PipelineConfig cfg;
  cfg.num_threads = 1;
  Pipeline p1(cfg, batch_sequence({batch}));
  Pipeline p2(cfg, batch_sequence({batch}));
  auto a = p1.run();
  auto b = p2.run();
  ASSERT_TRUE(a && b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a->samples[i].image.data, b->samples[i].image.data);
  }
}

}  // namespace
}  // namespace emlio::pipeline
