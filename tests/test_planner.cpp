// Tests for the EMLIO Planner (Algorithm 2): coverage, determinism,
// contiguity, worker splitting and scenario-2 replication semantics.
#include <gtest/gtest.h>

#include <set>

#include "core/planner.h"

namespace emlio::core {
namespace {

std::vector<ShardMeta> shards(std::initializer_list<std::uint64_t> sizes) {
  std::vector<ShardMeta> out;
  std::uint32_t id = 0;
  for (auto n : sizes) out.push_back(ShardMeta{id++, n});
  return out;
}

TEST(Planner, EveryRecordExactlyOnceSingleNode) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  Planner planner(shards({30, 17, 25}), cfg);
  auto plan = planner.plan_epoch(0, 1);
  Planner::validate(plan, shards({30, 17, 25}), cfg);
  EXPECT_EQ(plan.total_samples(), 72u);
}

TEST(Planner, EveryRecordExactlyOnceAcrossNodes) {
  PlannerConfig cfg;
  cfg.batch_size = 16;
  cfg.threads_per_node = 3;
  auto meta = shards({100, 101, 99, 55});
  Planner planner(meta, cfg);
  for (std::size_t nodes : {1u, 2u, 3u, 5u}) {
    auto plan = planner.plan_epoch(0, nodes);
    Planner::validate(plan, meta, cfg);
    EXPECT_EQ(plan.total_samples(), 355u) << nodes << " nodes";
    EXPECT_EQ(plan.nodes.size(), nodes);
  }
}

TEST(Planner, BatchesNeverExceedB) {
  PlannerConfig cfg;
  cfg.batch_size = 10;
  Planner planner(shards({25, 7}), cfg);
  auto plan = planner.plan_epoch(0, 2);
  for (const auto& node : plan.nodes) {
    for (const auto& w : node.workers) {
      for (const auto& b : w.batches) {
        EXPECT_LE(b.count, 10u);
        EXPECT_GT(b.count, 0u);
      }
    }
  }
}

TEST(Planner, DeterministicForSameSeedAndEpoch) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  cfg.seed = 42;
  Planner a(shards({50, 50}), cfg), b(shards({50, 50}), cfg);
  auto pa = a.plan_epoch(3, 2);
  auto pb = b.plan_epoch(3, 2);
  ASSERT_EQ(pa.nodes.size(), pb.nodes.size());
  for (std::size_t n = 0; n < pa.nodes.size(); ++n) {
    ASSERT_EQ(pa.nodes[n].workers.size(), pb.nodes[n].workers.size());
    for (std::size_t w = 0; w < pa.nodes[n].workers.size(); ++w) {
      EXPECT_EQ(pa.nodes[n].workers[w].batches, pb.nodes[n].workers[w].batches);
    }
  }
}

TEST(Planner, EpochsShuffleDifferently) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  Planner planner(shards({64, 64, 64, 64}), cfg);
  auto p0 = planner.plan_epoch(0, 1);
  auto p1 = planner.plan_epoch(1, 1);
  // Flatten the batch order per epoch and compare.
  auto flatten = [](const EpochPlan& p) {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
    for (const auto& w : p.nodes[0].workers) {
      for (const auto& b : w.batches) order.emplace_back(b.shard_id, b.first_record);
    }
    return order;
  };
  EXPECT_NE(flatten(p0), flatten(p1));
}

TEST(Planner, NoShuffleIsSequential) {
  PlannerConfig cfg;
  cfg.batch_size = 10;
  cfg.shuffle = false;
  Planner planner(shards({30}), cfg);
  auto plan = planner.plan_epoch(0, 1);
  const auto& batches = plan.nodes[0].workers[0].batches;
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].first_record, 0u);
  EXPECT_EQ(batches[1].first_record, 10u);
  EXPECT_EQ(batches[2].first_record, 20u);
}

TEST(Planner, WorkerSplitRoundRobin) {
  PlannerConfig cfg;
  cfg.batch_size = 10;
  cfg.threads_per_node = 4;
  cfg.shuffle = false;
  Planner planner(shards({120}), cfg);  // 12 batches
  auto plan = planner.plan_epoch(0, 1);
  ASSERT_EQ(plan.nodes[0].workers.size(), 4u);
  for (const auto& w : plan.nodes[0].workers) {
    EXPECT_EQ(w.batches.size(), 3u);  // 12 / 4
    for (const auto& b : w.batches) EXPECT_EQ(b.worker_id, w.worker_id);
  }
}

TEST(Planner, FullDatasetPerNodeReplicates) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  cfg.full_dataset_per_node = true;
  auto meta = shards({40, 40});
  Planner planner(meta, cfg);
  auto plan = planner.plan_epoch(0, 3);
  Planner::validate(plan, meta, cfg);
  for (const auto& node : plan.nodes) {
    EXPECT_EQ(node.total_samples(), 80u);  // each node sees everything
  }
  EXPECT_EQ(plan.total_samples(), 240u);
}

TEST(Planner, BatchIdsUniquePerNode) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  cfg.threads_per_node = 2;
  Planner planner(shards({100, 50}), cfg);
  auto plan = planner.plan_epoch(0, 2);
  for (const auto& node : plan.nodes) {
    std::set<std::uint64_t> ids;
    for (const auto& w : node.workers) {
      for (const auto& b : w.batches) {
        EXPECT_TRUE(ids.insert(b.batch_id).second) << "duplicate batch id";
        EXPECT_EQ(b.node_id, node.node_id);
      }
    }
  }
}

TEST(Planner, LabelMapFromShardIndexes) {
  tfrecord::ShardIndex idx;
  idx.shard_id = 0;
  idx.records.push_back({0, 116, 7, 100});
  idx.records.push_back({116, 116, -3, 101});
  PlannerConfig cfg;
  Planner planner(std::vector<tfrecord::ShardIndex>{idx}, cfg);
  EXPECT_EQ(planner.dataset_size(), 2u);
  EXPECT_EQ(planner.label_map().at(100), 7);
  EXPECT_EQ(planner.label_map().at(101), -3);
}

TEST(Planner, RejectsInvalidConfig) {
  PlannerConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(Planner(shards({10}), cfg), std::invalid_argument);
  PlannerConfig ok;
  Planner planner(shards({10}), ok);
  EXPECT_THROW(planner.plan_epoch(0, 0), std::invalid_argument);
}

TEST(Planner, ValidateCatchesDoubleCoverage) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  auto meta = shards({16});
  Planner planner(meta, cfg);
  auto plan = planner.plan_epoch(0, 1);
  // Duplicate a batch → validation must fail.
  plan.nodes[0].workers[0].batches.push_back(plan.nodes[0].workers[0].batches[0]);
  EXPECT_THROW(Planner::validate(plan, meta, cfg), std::logic_error);
}

TEST(Planner, ValidateCatchesOutOfBounds) {
  PlannerConfig cfg;
  cfg.batch_size = 8;
  auto meta = shards({16});
  Planner planner(meta, cfg);
  auto plan = planner.plan_epoch(0, 1);
  plan.nodes[0].workers[0].batches[0].first_record = 12;  // 12+8 > 16
  EXPECT_THROW(Planner::validate(plan, meta, cfg), std::logic_error);
}

class PlannerSweep : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(PlannerSweep, CoverageHoldsAcrossConfigurations) {
  auto [batch, nodes, threads] = GetParam();
  PlannerConfig cfg;
  cfg.batch_size = batch;
  cfg.threads_per_node = static_cast<std::uint32_t>(threads);
  auto meta = shards({97, 41, 128, 3});
  Planner planner(meta, cfg);
  for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
    auto plan = planner.plan_epoch(epoch, nodes);
    Planner::validate(plan, meta, cfg);
    EXPECT_EQ(plan.total_samples(), 269u);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PlannerSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(1, 7, 32, 300),
                                            ::testing::Values<std::size_t>(1, 2, 4),
                                            ::testing::Values(1, 3)));

}  // namespace
}  // namespace emlio::core
