// QoS-layer integration tests: the cold-sink governor regression the lane
// refactor fixes, the per-lane stats breakdowns both engines now publish,
// byte-identical per-lane delivery at every weight, and the StatsStreamer
// flatten/delta machinery behind --stats-interval. Runs in the TSan CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/daemon.h"
#include "core/planner.h"
#include "core/receiver.h"
#include "core/service.h"
#include "core/stats_stream.h"
#include "net/sim_channel.h"
#include "workload/materialize.h"

namespace emlio::core {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class QosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("emlio_qos_" + std::to_string(::getpid()) + "_" +
                                        ::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name());
    fs::create_directories(dir_);
    spec_ = workload::presets::tiny(48, 900);
    built_ = workload::materialize_tfrecord(spec_, dir_.string(), 3);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<tfrecord::ShardReader> readers() {
    auto indexes = tfrecord::load_all_indexes(dir_.string());
    std::vector<tfrecord::ShardReader> r;
    for (const auto& idx : indexes) r.emplace_back(idx);
    return r;
  }

  fs::path dir_;
  workload::DatasetSpec spec_;
  tfrecord::BuiltDataset built_;
};

// --------------------------------------------- cold-sink governor regression

/// A sink whose send() parks every caller until release() — the sharpest
/// possible cold destination: the lane's sender thread pops exactly one
/// payload and then wedges, so the lane delivers nothing for the rest of
/// the wedge phase.
struct WedgedSink final : net::MessageSink {
  explicit WedgedSink(std::shared_ptr<net::MessageSink> wrapped) : inner(std::move(wrapped)) {}
  bool send(Payload message) override {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return open; });
    }
    return inner->send(std::move(message));
  }
  void close() override { inner->close(); }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  std::shared_ptr<net::MessageSink> inner;
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
};

TEST_F(QosTest, GovernorIgnoresColdSinkLane) {
  // One destination is wedged — its sender parks on the first send, so the
  // lane fills and then delivers zero for the whole wedge phase — while the
  // other node drains. The wedged lane's enqueue stalls must NOT count as
  // shrink evidence (a zero-delivery lane is weighted out of the window), so
  // the encode pool never drops below its starting width while the healthy
  // lane still needs it. Before the per-lane window fix, a cold sink's
  // stalls read as "encode outran the wire" and shrank the pool under
  // everyone. The healthy lane carries a (non-binding) rate cap: rate-capped
  // lanes are excluded from shrink evidence by design, so the only rate-0
  // lane in the run is the wedged one — the test isolates exactly its votes.
  auto indexes = tfrecord::load_all_indexes(dir_.string());
  PlannerConfig pc;
  pc.batch_size = 4;
  pc.epochs = 1;
  Planner planner(indexes, pc);
  auto plan = planner.plan_epoch(0, /*num_nodes=*/2);

  auto ch0 = net::make_sim_channel({});
  auto ch1 = net::make_sim_channel({});
  auto wedged = std::make_shared<WedgedSink>(
      std::shared_ptr<net::MessageSink>(std::move(ch0.sink)));
  auto sink1 = std::shared_ptr<net::MessageSink>(std::move(ch1.sink));

  ReceiverConfig rc;
  rc.num_senders = 1;
  Receiver r0(rc, std::move(ch0.source));
  Receiver r1(rc, std::move(ch1.source));

  DaemonConfig dc;
  dc.pool_threads = 2;
  dc.prefetch_depth = 2;
  dc.adaptive_pool = true;
  dc.adaptive_min_threads = 1;
  dc.adaptive_max_threads = 4;
  dc.adaptive_interval_ms = 1;  // many control windows inside the test
  dc.node_qos[1] = LaneQos{LaneClass::kInteractive, 1, 1000000};  // cap >> rate
  std::map<std::uint32_t, std::shared_ptr<net::MessageSink>> sinks{{0u, wedged},
                                                                   {1u, sink1}};
  Daemon daemon(dc, readers(), sinks);

  std::thread serve([&] {
    EXPECT_TRUE(daemon.serve_epoch(plan));
    wedged->close();
    sink1->close();
  });

  // Drain the healthy node completely while node 0 stays wedged, then hold
  // the wedge across plenty of governor windows.
  std::uint64_t want1 = 0;
  for (const auto& node : plan.nodes) {
    if (node.node_id == 1) want1 = node.total_samples();
  }
  ASSERT_GT(want1, 0u);
  std::uint64_t got1 = 0;
  std::uint64_t min_width_seen = dc.pool_threads;
  while (got1 < want1) {
    auto batch = r1.next();
    ASSERT_TRUE(batch.has_value());
    ASSERT_FALSE(batch->last);
    got1 += batch->samples.size();
    min_width_seen = std::min(min_width_seen, daemon.stats().pool_threads_current);
  }
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(1ms);
    min_width_seen = std::min(min_width_seen, daemon.stats().pool_threads_current);
  }
  EXPECT_GE(min_width_seen, dc.pool_threads)
      << "cold sink shrank the encode pool under the healthy lane";

  // The breakdown shows why: the wedged lane delivered exactly the one
  // payload its parked sender holds, while the healthy lane moved data.
  {
    auto lanes = daemon.stats().lanes;
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_EQ(lanes[0].delivered_items, 1u);  // "node0", wedged in send()
    EXPECT_GT(lanes[1].delivered_items, 1u);  // "node1", healthy
  }

  // Unpark node 0; both streams complete cleanly.
  wedged->release();
  std::uint64_t got0 = 0;
  while (auto batch = r0.next()) {
    if (batch->last) break;
    got0 += batch->samples.size();
  }
  while (auto batch = r1.next()) {
    if (batch->last) break;
  }
  serve.join();
  EXPECT_EQ(got0 + got1, spec_.num_samples);
  EXPECT_TRUE(daemon.ok());
  r0.close();
  r1.close();
}

// ------------------------------------------------- per-lane stats breakdowns

TEST_F(QosTest, DaemonLaneBreakdownCarriesQosAndAggregates) {
  auto indexes = tfrecord::load_all_indexes(dir_.string());
  PlannerConfig pc;
  pc.batch_size = 8;
  pc.epochs = 2;
  Planner planner(indexes, pc);

  auto ch0 = net::make_sim_channel({});
  auto ch1 = net::make_sim_channel({});
  auto sink0 = std::shared_ptr<net::MessageSink>(std::move(ch0.sink));
  auto sink1 = std::shared_ptr<net::MessageSink>(std::move(ch1.sink));

  ReceiverConfig rc;
  rc.num_senders = 1;
  Receiver r0(rc, std::move(ch0.source));
  Receiver r1(rc, std::move(ch1.source));

  DaemonConfig dc;
  dc.pool_threads = 2;
  dc.prefetch_depth = 2;  // small queue: force some enqueue stalls
  dc.default_lane_qos.lane_class = LaneClass::kBulk;
  dc.node_qos[1] = LaneQos{LaneClass::kInteractive, 3, 0};
  std::map<std::uint32_t, std::shared_ptr<net::MessageSink>> sinks{{0u, sink0}, {1u, sink1}};
  Daemon daemon(dc, readers(), sinks);

  std::thread serve([&] {
    EXPECT_TRUE(daemon.serve(planner, /*num_nodes=*/2));
    sink0->close();
    sink1->close();
  });
  auto drain = [](Receiver& r) {
    std::uint64_t samples = 0;
    while (auto batch = r.next()) samples += batch->samples.size();
    return samples;
  };
  std::uint64_t s0 = 0, s1 = 0;
  std::thread t0([&] { s0 = drain(r0); });
  s1 = drain(r1);
  t0.join();
  serve.join();
  EXPECT_EQ(s0 + s1, 2 * static_cast<std::uint64_t>(spec_.num_samples));

  auto stats = daemon.stats();
  ASSERT_EQ(stats.lanes.size(), 2u);
  EXPECT_EQ(stats.lanes[0].name, "node0");
  EXPECT_EQ(stats.lanes[1].name, "node1");
  // QoS identity rides into the breakdown: default for node 0, override for 1.
  EXPECT_EQ(stats.lanes[0].lane_class, LaneClass::kBulk);
  EXPECT_EQ(stats.lanes[0].weight, 1u);
  EXPECT_EQ(stats.lanes[1].lane_class, LaneClass::kInteractive);
  EXPECT_EQ(stats.lanes[1].weight, 3u);
  // Both lanes moved data (items and attributed wire bytes).
  std::uint64_t items = 0, enq = 0, deq = 0, peak = 0;
  for (const auto& lane : stats.lanes) {
    EXPECT_GT(lane.delivered_items, 0u) << lane.name;
    EXPECT_GT(lane.delivered_bytes, 0u) << lane.name;
    items += lane.delivered_items;
    enq += lane.enqueue_stalls;
    deq += lane.dequeue_stalls;
    peak = std::max(peak, lane.queue_peak_depth);
  }
  // The flat pipeline counters are exactly the lane aggregates.
  EXPECT_EQ(stats.enqueue_stalls, enq);
  EXPECT_EQ(stats.sender_stalls, deq);
  EXPECT_EQ(stats.queue_peak_depth, peak);
  // Every sent batch left through some lane (sentinels ride the lanes too,
  // so lane items can exceed the data-batch count, never undercut it).
  EXPECT_GE(items, stats.batches_sent);

  // And the JSON stats surface the same breakdown for --stats-json/streaming.
  auto j = to_json(stats);
  ASSERT_TRUE(j.contains("lanes"));
  ASSERT_EQ(j.at("lanes").as_array().size(), 2u);
  EXPECT_EQ(j.at("lanes").as_array()[1].at("weight").as_int(), 3);
  r0.close();
  r1.close();
}

TEST_F(QosTest, ReceiverPerSourceLaneBreakdown) {
  // Two daemons fan into one receiver; each source gets its own lane with
  // its own QoS, and the breakdown reports per-source delivery.
  auto indexes = tfrecord::load_all_indexes(dir_.string());
  ASSERT_EQ(indexes.size(), 3u);
  PlannerConfig pc;
  pc.batch_size = 8;
  pc.epochs = 1;
  Planner planner(indexes, pc);

  auto ch0 = net::make_sim_channel({});
  auto ch1 = net::make_sim_channel({});
  auto sink0 = std::shared_ptr<net::MessageSink>(std::move(ch0.sink));
  auto sink1 = std::shared_ptr<net::MessageSink>(std::move(ch1.sink));

  ReceiverConfig rc;
  rc.num_senders = 2;
  rc.decode_threads = 2;
  rc.source_qos = {LaneQos{LaneClass::kInteractive, 4, 0},
                   LaneQos{LaneClass::kBulk, 1, 0}};
  std::vector<std::unique_ptr<net::MessageSource>> ins;
  ins.push_back(std::move(ch0.source));
  ins.push_back(std::move(ch1.source));
  Receiver receiver(rc, std::move(ins));

  // Daemon 0 owns shards {0,1}; daemon 1 owns {2}; both push to node 0.
  auto make_daemon = [&](int d, std::shared_ptr<net::MessageSink> sink) {
    std::vector<tfrecord::ShardReader> r;
    if (d == 0) {
      r.emplace_back(indexes[0]);
      r.emplace_back(indexes[1]);
    } else {
      r.emplace_back(indexes[2]);
    }
    DaemonConfig dc;
    dc.daemon_id = "d" + std::to_string(d);
    std::map<std::uint32_t, std::shared_ptr<net::MessageSink>> sinks{{0u, std::move(sink)}};
    return std::make_unique<Daemon>(dc, std::move(r), sinks);
  };
  auto d0 = make_daemon(0, sink0);
  auto d1 = make_daemon(1, sink1);
  std::thread serve0([&] {
    EXPECT_TRUE(d0->serve(planner, 1));
    sink0->close();
  });
  std::thread serve1([&] {
    EXPECT_TRUE(d1->serve(planner, 1));
    sink1->close();
  });

  std::uint64_t samples = 0;
  std::size_t markers = 0;
  while (auto batch = receiver.next()) {
    if (batch->last) {
      ++markers;
      continue;
    }
    samples += batch->samples.size();
  }
  serve0.join();
  serve1.join();
  EXPECT_EQ(samples, static_cast<std::uint64_t>(spec_.num_samples));
  EXPECT_EQ(markers, 1u);

  auto stats = receiver.stats();
  ASSERT_EQ(stats.lanes.size(), 2u);
  EXPECT_EQ(stats.lanes[0].name, "src0");
  EXPECT_EQ(stats.lanes[1].name, "src1");
  EXPECT_EQ(stats.lanes[0].weight, 4u);
  EXPECT_EQ(stats.lanes[1].weight, 1u);
  EXPECT_EQ(stats.lanes[0].lane_class, LaneClass::kInteractive);
  EXPECT_EQ(stats.lanes[1].lane_class, LaneClass::kBulk);
  std::uint64_t lane_items = 0;
  for (const auto& lane : stats.lanes) {
    EXPECT_GT(lane.delivered_items, 0u) << lane.name;
    EXPECT_GT(lane.delivered_bytes, 0u) << lane.name;
    EXPECT_TRUE(lane.closed) << lane.name;
    lane_items += lane.delivered_items;
  }
  // Every wire payload (data batches + per-daemon sentinels) crossed a lane.
  EXPECT_GE(lane_items, stats.batches_received);
  receiver.close();
}

TEST_F(QosTest, SingleSourceSerialReceiverHasNoLaneStage) {
  auto ch = net::make_sim_channel({});
  auto sink = std::shared_ptr<net::MessageSink>(std::move(ch.sink));
  ReceiverConfig rc;
  rc.num_senders = 1;
  Receiver receiver(rc, std::move(ch.source));
  sink->close();
  while (receiver.next()) {
  }
  EXPECT_TRUE(receiver.stats().lanes.empty());
  receiver.close();
}

// --------------------------------------- byte-identical delivery at any QoS

TEST_F(QosTest, WeightsNeverChangePerLaneStreamContent) {
  // Same plan, same seed, radically different QoS splits: each node's
  // decoded stream must be byte-for-byte identical across configurations —
  // weights shift WHEN a lane is served, never WHAT it carries or in what
  // order. (The per-sink resequencer pins batch-id order; serial receivers
  // keep decode deterministic.)
  auto capture = [&](LaneQos q0, LaneQos q1) {
    auto indexes = tfrecord::load_all_indexes(dir_.string());
    PlannerConfig pc;
    pc.batch_size = 4;
    pc.epochs = 1;
    pc.seed = 7;
    Planner planner(indexes, pc);

    auto ch0 = net::make_sim_channel({});
    auto ch1 = net::make_sim_channel({});
    auto sink0 = std::shared_ptr<net::MessageSink>(std::move(ch0.sink));
    auto sink1 = std::shared_ptr<net::MessageSink>(std::move(ch1.sink));
    ReceiverConfig rc;
    rc.num_senders = 1;
    Receiver r0(rc, std::move(ch0.source));
    Receiver r1(rc, std::move(ch1.source));

    DaemonConfig dc;
    dc.pool_threads = 3;    // pooled encode: order must still be pinned
    dc.prefetch_depth = 2;  // and backpressure exercised
    dc.node_qos[0] = q0;
    dc.node_qos[1] = q1;
    std::map<std::uint32_t, std::shared_ptr<net::MessageSink>> sinks{{0u, sink0}, {1u, sink1}};
    Daemon daemon(dc, readers(), sinks);
    std::thread serve([&] {
      EXPECT_TRUE(daemon.serve(planner, 2));
      sink0->close();
      sink1->close();
    });

    auto flatten = [](Receiver& r) {
      std::vector<std::uint8_t> stream;
      auto put_u64 = [&stream](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) stream.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
      };
      while (auto batch = r.next()) {
        put_u64(batch->epoch);
        put_u64(batch->batch_id);
        put_u64(batch->last ? 1 : 0);
        for (const auto& s : batch->samples) {
          put_u64(s.index);
          put_u64(static_cast<std::uint64_t>(s.label));
          put_u64(s.bytes.size());
          stream.insert(stream.end(), s.bytes.data(), s.bytes.data() + s.bytes.size());
        }
      }
      return stream;
    };
    std::vector<std::uint8_t> s0, s1;
    std::thread t0([&] { s0 = flatten(r0); });
    s1 = flatten(r1);
    t0.join();
    serve.join();
    r0.close();
    r1.close();
    return std::make_pair(std::move(s0), std::move(s1));
  };

  auto a = capture(LaneQos{LaneClass::kInteractive, 1, 0}, LaneQos{LaneClass::kBulk, 4, 0});
  auto b = capture(LaneQos{LaneClass::kBulk, 4, 0}, LaneQos{LaneClass::kInteractive, 1, 0});
  auto c = capture(LaneQos{LaneClass::kInteractive, 1, 200},  // rate-capped lane
                   LaneQos{LaneClass::kInteractive, 1, 0});
  ASSERT_GT(a.first.size(), 0u);
  ASSERT_GT(a.second.size(), 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first, c.first);
  EXPECT_EQ(a.second, c.second);
}

// ----------------------------------------------------- service-level plumbing

TEST_F(QosTest, ServiceRejectsUnknownLaneClass) {
  ServiceConfig cfg;
  cfg.dataset_dir = dir_.string();
  cfg.lane_class = "premium";
  EXPECT_THROW(EmlioService{cfg}, std::runtime_error);
}

TEST_F(QosTest, ServiceThreadsQosToBothEngines) {
  ServiceConfig cfg;
  cfg.dataset_dir = dir_.string();
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.lane_class = "bulk";
  cfg.lane_weight = 5;
  EmlioService service(cfg);
  service.start();
  while (auto batch = service.next_batch()) {
    if (batch->last) break;
  }
  service.stop();
  auto stats = service.stats();
  ASSERT_EQ(stats.daemon.lanes.size(), 1u);
  EXPECT_EQ(stats.daemon.lanes[0].lane_class, LaneClass::kBulk);
  EXPECT_EQ(stats.daemon.lanes[0].weight, 5u);
  // Single-source receiver runs the serial engine only when decode_threads
  // == 0 AND there is one source; the service default is serial, so the
  // receiver side has no lane stage here — the daemon side carries the QoS.
}

// ------------------------------------------------------------- StatsStreamer

TEST(StatsStreamer, FlattensNestedObjectsAndNamedArrays) {
  json::Object lane0;
  lane0["name"] = std::string("node0");
  lane0["delivered_items"] = std::uint64_t{7};
  lane0["closed"] = true;
  json::Object lane1;
  lane1["name"] = std::string("node1");
  lane1["delivered_items"] = std::uint64_t{9};
  json::Array lanes;
  lanes.push_back(lane0);
  lanes.push_back(lane1);
  json::Object cache;
  cache["hits"] = std::uint64_t{3};
  json::Object root;
  root["batches_sent"] = std::uint64_t{12};
  root["cache"] = cache;
  root["lanes"] = std::move(lanes);
  root["daemon_id"] = std::string("d0");  // strings carry no numeric field

  auto fields = StatsStreamer::flatten(json::Value(std::move(root)));
  EXPECT_EQ(fields.at("batches_sent"), 12.0);
  EXPECT_EQ(fields.at("cache.hits"), 3.0);
  EXPECT_EQ(fields.at("lanes.node0.delivered_items"), 7.0);
  EXPECT_EQ(fields.at("lanes.node0.closed"), 1.0);
  EXPECT_EQ(fields.at("lanes.node1.delivered_items"), 9.0);
  EXPECT_EQ(fields.count("daemon_id"), 0u);
  // The "name" member keys the element, it is not itself a field.
  EXPECT_EQ(fields.count("lanes.node0.name"), 0u);
}

TEST(StatsStreamer, StreamsDeltasAndGaugesAsLineProtocol) {
  char* buffer = nullptr;
  std::size_t buffer_len = 0;
  std::FILE* out = open_memstream(&buffer, &buffer_len);
  ASSERT_NE(out, nullptr);
  {
    int calls = 0;
    StatsStreamer::Options so;
    so.measurement = "qos_test";
    so.tags = {{"side", "daemon"}};
    so.interval = 5ms;
    so.gauges = {"width"};
    so.out = out;
    StatsStreamer streamer(
        [&calls]() mutable {
          ++calls;
          json::Object o;
          o["count"] = static_cast<std::uint64_t>(calls * 5);  // +5 per window
          o["width"] = std::uint64_t{7};                       // gauge
          return json::Value(std::move(o));
        },
        std::move(so));
    std::this_thread::sleep_for(30ms);
  }  // destructor stops the stream and emits the tail line
  std::fclose(out);
  std::string text(buffer, buffer_len);
  free(buffer);

  std::size_t lines = 0;
  for (char ch : text) lines += ch == '\n';
  ASSERT_GE(lines, 2u);  // several windows plus the tail line
  // Every line: the measurement + tag prefix, the per-window delta (always
  // +5) and the gauge streamed as-is (always 7).
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find('\n', pos);
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    EXPECT_EQ(line.rfind("qos_test,side=daemon ", 0), 0u) << line;
    EXPECT_NE(line.find("count=5"), std::string::npos) << line;
    EXPECT_NE(line.find("width=7"), std::string::npos) << line;
  }
}

TEST(StatsStreamer, FlattensNestedLatencyQuantileObjects) {
  // The stats JSON of a traced engine nests per-stage quantile objects
  // under "latency"; they must flatten to '.'-separated numeric fields so
  // the tools can stream them.
  json::Object decode;
  decode["count"] = std::uint64_t{42};
  decode["p50"] = 1500.0;
  decode["p99"] = 9000.0;
  decode["max"] = 12000.0;
  json::Object latency;
  latency["decode"] = decode;
  json::Object root;
  root["batches_received"] = std::uint64_t{42};
  root["latency"] = std::move(latency);

  auto fields = StatsStreamer::flatten(json::Value(std::move(root)));
  EXPECT_EQ(fields.at("latency.decode.count"), 42.0);
  EXPECT_EQ(fields.at("latency.decode.p50"), 1500.0);
  EXPECT_EQ(fields.at("latency.decode.p99"), 9000.0);
  EXPECT_EQ(fields.at("latency.decode.max"), 12000.0);
}

TEST(StatsStreamer, QuantileLeavesStreamAsGaugesNotDeltas) {
  // Matching the tools' gauge sets: "p50"/"p95"/"p99"/"max" leaves must
  // stream as-is every window, while sibling counters are delta-encoded.
  char* buffer = nullptr;
  std::size_t buffer_len = 0;
  std::FILE* out = open_memstream(&buffer, &buffer_len);
  ASSERT_NE(out, nullptr);
  {
    int calls = 0;
    StatsStreamer::Options so;
    so.measurement = "trace_test";
    so.interval = 5ms;
    so.gauges = {"p50", "p95", "p99", "max"};
    so.out = out;
    StatsStreamer streamer(
        [&calls]() mutable {
          ++calls;
          json::Object e2e;
          e2e["count"] = static_cast<std::uint64_t>(calls * 3);  // +3 per window
          e2e["p50"] = 2500.0;                                   // gauge
          e2e["max"] = 80000.0;                                  // gauge
          json::Object latency;
          latency["e2e"] = std::move(e2e);
          json::Object o;
          o["latency"] = std::move(latency);
          return json::Value(std::move(o));
        },
        std::move(so));
    std::this_thread::sleep_for(30ms);
  }
  std::fclose(out);
  std::string text(buffer, buffer_len);
  free(buffer);

  std::size_t lines = 0;
  for (char ch : text) lines += ch == '\n';
  ASSERT_GE(lines, 2u);
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find('\n', pos);
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    // The count leaf deltas to +3; the quantile leaves pass through.
    EXPECT_NE(line.find("latency.e2e.count=3"), std::string::npos) << line;
    EXPECT_NE(line.find("latency.e2e.p50=2500"), std::string::npos) << line;
    EXPECT_NE(line.find("latency.e2e.max=80000"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace emlio
