// Tests for the storage read-cost models and file stores.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "storage/file_store.h"
#include "storage/read_cost.h"

namespace emlio::storage {
namespace {

namespace fs = std::filesystem;

TEST(LocalDiskModel, LatencyPlusBandwidth) {
  LocalDiskModel disk;
  disk.bytes_per_sec = 1e6;
  disk.request_latency = from_millis(1);
  EXPECT_EQ(disk.read_time(1'000'000), from_millis(1) + from_seconds(1));
}

TEST(NfsModel, RoundTripsGrowWithFileSize) {
  NfsModel nfs;
  nfs.rsize = 1 << 20;
  nfs.metadata_round_trips = 2.0;
  EXPECT_DOUBLE_EQ(nfs.round_trips(100'000), 3.0);       // 1 chunk
  EXPECT_DOUBLE_EQ(nfs.round_trips(2'000'000), 4.0);     // 2 chunks
  EXPECT_DOUBLE_EQ(nfs.round_trips(10 << 20), 12.0);     // 10 chunks
}

TEST(NfsModel, ReadTimeScalesWithRtt) {
  NfsModel nfs;
  nfs.rtt_ms = 10.0;
  Nanos at10 = nfs.read_time(100'000);
  nfs.rtt_ms = 30.0;
  Nanos at30 = nfs.read_time(100'000);
  // 3 round trips → +20 ms per extra RTT step ×3.
  EXPECT_NEAR(to_seconds(at30 - at10), 0.060, 0.001);
}

TEST(NfsModel, RttDominatesSmallFiles) {
  NfsModel nfs;
  nfs.rtt_ms = 30.0;
  // A 0.1 MB ImageNet sample: ~90 ms of RTT vs ~0.3 ms of wire time — the
  // Figure-5 effect in one assertion.
  Nanos t = nfs.read_time(100'000);
  EXPECT_GT(to_seconds(t), 0.090);
  EXPECT_LT(to_seconds(t), 0.095);
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("emlio_store_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    std::ofstream f(dir_ / "data.bin", std::ios::binary);
    for (int i = 0; i < 1000; ++i) f.put(static_cast<char>(i % 251));
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(FileStoreTest, LocalReadsWholeFile) {
  LocalFileStore store;
  auto bytes = store.read_file((dir_ / "data.bin").string());
  ASSERT_EQ(bytes.size(), 1000u);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[999], 999 % 251);
  EXPECT_EQ(store.file_size((dir_ / "data.bin").string()), 1000u);
}

TEST_F(FileStoreTest, LocalMissingFileThrows) {
  LocalFileStore store;
  EXPECT_THROW(store.read_file((dir_ / "nope").string()), std::runtime_error);
  EXPECT_THROW(store.file_size((dir_ / "nope").string()), std::runtime_error);
}

TEST_F(FileStoreTest, LatencyStoreInjectsWait) {
  auto inner = std::make_shared<LocalFileStore>();
  LatencyFileStore::Options opt;
  opt.rtt_ms = 5.0;
  opt.metadata_ops = 2.0;
  opt.chunk_bytes = 1 << 20;
  LatencyFileStore store(inner, opt);

  Stopwatch sw(SteadyClock::instance());
  auto bytes = store.read_file((dir_ / "data.bin").string());
  EXPECT_EQ(bytes.size(), 1000u);
  // 2 metadata ops + 1 chunk = 3 RTTs = 15 ms minimum.
  EXPECT_GE(sw.elapsed(), from_millis(14.0));
  EXPECT_GE(store.injected_wait(), from_millis(15.0) - from_millis(1.0));
}

TEST_F(FileStoreTest, LatencyScalesWithChunks) {
  auto inner = std::make_shared<LocalFileStore>();
  LatencyFileStore::Options opt;
  opt.rtt_ms = 1.0;
  opt.metadata_ops = 0.0;
  opt.chunk_bytes = 100;  // 1000-byte file → 10 chunks
  LatencyFileStore store(inner, opt);
  store.read_file((dir_ / "data.bin").string());
  EXPECT_GE(store.injected_wait(), from_millis(9.5));
}

TEST_F(FileStoreTest, StatCostsOneRtt) {
  auto inner = std::make_shared<LocalFileStore>();
  LatencyFileStore::Options opt;
  opt.rtt_ms = 3.0;
  LatencyFileStore store(inner, opt);
  EXPECT_EQ(store.file_size((dir_ / "data.bin").string()), 1000u);
  EXPECT_GE(store.injected_wait(), from_millis(2.5));
}

}  // namespace
}  // namespace emlio::storage
