// Tests for the per-batch stage tracing subsystem (src/obs): histogram
// bucket math and quantiles, the BatchTrace exact-sum invariant, the
// slow-batch TraceRing, the optional "t0" wire key, the bounded
// TimestampLogger, and an end-to-end traced service run.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/timestamp_logger.h"
#include "core/service.h"
#include "msgpack/batch_codec.h"
#include "obs/latency_histogram.h"
#include "obs/trace.h"
#include "workload/materialize.h"

namespace emlio::obs {
namespace {

// ---------------------------------------------------- histogram buckets

TEST(LatencyHistogramBuckets, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_floor(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_mid(v), v);
  }
}

TEST(LatencyHistogramBuckets, IndexIsMonotoneAcrossOctaves) {
  std::size_t prev = 0;
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
                          std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{63},
                          std::uint64_t{64}, std::uint64_t{100}, std::uint64_t{1000},
                          std::uint64_t{1} << 20, (std::uint64_t{1} << 20) + 1,
                          std::uint64_t{1} << 40, UINT64_MAX / 2,
                          std::uint64_t{UINT64_MAX}}) {
    std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "value " << v;
    EXPECT_LT(idx, LatencyHistogram::kBucketCount) << "value " << v;
    prev = idx;
  }
}

TEST(LatencyHistogramBuckets, FloorRoundTripsToSameIndex) {
  // Every value must land in a bucket whose floor maps back to the same
  // index, and must lie in [floor(i), floor(i+1)).
  for (std::uint64_t v : {0ull, 5ull, 31ull, 32ull, 47ull, 63ull, 64ull, 65ull,
                          999ull, 4096ull, 123456789ull, 1ull << 50}) {
    std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_floor(idx)), idx)
        << "value " << v;
    EXPECT_GE(v, LatencyHistogram::bucket_floor(idx)) << "value " << v;
    if (idx + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_LT(v, LatencyHistogram::bucket_floor(idx + 1)) << "value " << v;
    }
  }
}

TEST(LatencyHistogramBuckets, RelativeErrorBounded) {
  // The bucket midpoint must be within 1/32 of any value in the bucket.
  for (std::uint64_t v : {100ull, 1000ull, 54321ull, 1'000'000ull, 1ull << 33}) {
    std::size_t idx = LatencyHistogram::bucket_index(v);
    double mid = static_cast<double>(LatencyHistogram::bucket_mid(idx));
    double rel = std::abs(mid - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / 32.0) << "value " << v;
  }
}

// -------------------------------------------------- histogram quantiles

TEST(LatencyHistogram, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleAnswersEveryQuantileExactly) {
  LatencyHistogram h;
  h.record(123457);  // mid-bucket value: the [min,max] clamp makes it exact
  for (double p : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(p), 123457.0) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 123457u);
  EXPECT_EQ(h.max(), 123457u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, QuantilesOfUniformRampAreAccurate) {
  LatencyHistogram h;
  for (std::int64_t v = 1; v <= 10000; ++v) h.record(v);
  auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  // Log-bucketed: 1/32 relative error bound (+1 bucket of slack at the edge).
  EXPECT_NEAR(snap.quantile(0.5), 5000.0, 5000.0 / 16.0);
  EXPECT_NEAR(snap.quantile(0.95), 9500.0, 9500.0 / 16.0);
  EXPECT_NEAR(snap.quantile(0.99), 9900.0, 9900.0 / 16.0);
  EXPECT_EQ(snap.quantile(0.0), 1.0);      // p<=0 => min
  EXPECT_EQ(snap.quantile(1.0), 10000.0);  // p>=1 => max
}

TEST(LatencyHistogram, MergeFoldsCounters) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(100);
  a.record(200);
  b.record(40);
  b.record(90000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 100u + 200u + 40u + 90000u);
  EXPECT_EQ(a.min(), 40u);
  EXPECT_EQ(a.max(), 90000u);
}

TEST(LatencyHistogram, SnapshotDeltaIsolatesWindow) {
  LatencyHistogram h;
  h.record(10);
  h.record(20);
  auto before = h.snapshot();
  h.record(30);
  h.record(40);
  auto window = h.snapshot().delta(before);
  EXPECT_EQ(window.count, 2u);
  EXPECT_EQ(window.sum, 70u);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  // Exercised under TSan in CI: record() must be data-race-free.
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(t * 1000 + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3000u + kPerThread - 1);
}

TEST(LatencyHistogram, ToJsonCarriesQuantileKeys) {
  LatencyHistogram h;
  h.record(1000);
  auto j = to_json(h.snapshot());
  const auto& o = j.as_object();
  EXPECT_EQ(o.at("count").as_int(), 1);
  EXPECT_EQ(o.at("p50").as_double(), 1000.0);
  EXPECT_EQ(o.at("p99").as_double(), 1000.0);
  EXPECT_EQ(o.at("max_ns").as_int(), 1000);
  EXPECT_EQ(o.at("min_ns").as_int(), 1000);
}

// ------------------------------------------------------------ BatchTrace

TEST(BatchTrace, StageDeltasSumToTotalExactly) {
  BatchTrace t;
  t.begin(1000);
  t.note(Stage::kRead, 1400);
  t.note(Stage::kEncode, 1401);
  t.note(Stage::kLaneWait, 2000);
  t.note(Stage::kWire, 5555);
  std::int64_t sum = 0;
  for (auto ns : t.stage_ns) sum += ns;
  EXPECT_EQ(sum, t.total_ns);
  EXPECT_EQ(t.total_ns, 5555 - 1000);
}

TEST(BatchTrace, NonMonotoneStampIsClamped) {
  BatchTrace t;
  t.begin(1000);
  t.note(Stage::kRead, 900);  // clock went "backwards" across threads
  EXPECT_EQ(t.stage_ns[0], 0);
  EXPECT_EQ(t.total_ns, 0);
  t.note(Stage::kEncode, 1200);
  EXPECT_EQ(t.total_ns, 200);
}

TEST(BatchTrace, PrependGraftsWireOrigin) {
  BatchTrace t;
  t.begin(5000);
  t.note(Stage::kDecode, 6000);
  t.prepend(Stage::kWire, 2000);
  EXPECT_EQ(t.stage_ns[static_cast<std::size_t>(Stage::kWire)], 3000);
  EXPECT_EQ(t.start_ns, 2000);
  EXPECT_EQ(t.total_ns, 4000);
  std::int64_t sum = 0;
  for (auto ns : t.stage_ns) sum += ns;
  EXPECT_EQ(sum, t.total_ns);  // the invariant survives grafting
}

TEST(BatchTrace, PrependIgnoresBogusOrigins) {
  BatchTrace t;
  t.begin(5000);
  t.note(Stage::kDecode, 6000);
  t.prepend(Stage::kWire, 0);     // absent stamp
  t.prepend(Stage::kWire, 7000);  // future stamp (cross-host clock)
  EXPECT_EQ(t.start_ns, 5000);
  EXPECT_EQ(t.total_ns, 1000);
  BatchTrace inactive;
  inactive.prepend(Stage::kWire, 100);  // never begun
  EXPECT_FALSE(inactive.active());
}

TEST(StageTimer, NullTraceIsNoOp) {
  StageTimer timer(nullptr, Stage::kRead);  // must not crash or stamp
}

TEST(StageTimer, BeginsTraceAndAttributesElapsed) {
  BatchTrace t;
  {
    StageTimer timer(&t, Stage::kEncode);
    EXPECT_TRUE(t.active());
  }
  EXPECT_GE(t.stage_ns[static_cast<std::size_t>(Stage::kEncode)], 0);
  std::int64_t sum = 0;
  for (auto ns : t.stage_ns) sum += ns;
  EXPECT_EQ(sum, t.total_ns);
}

// ------------------------------------------------------------- TraceRing

BatchTrace trace_with_total(std::uint64_t id, std::int64_t total) {
  BatchTrace t;
  t.batch_id = id;
  t.begin(1);
  t.note(Stage::kWire, 1 + total);
  return t;
}

TEST(TraceRing, KeepsKSlowestInOrder) {
  TraceRing ring(3);
  for (std::int64_t total : {50, 10, 99, 30, 70, 5}) {
    ring.offer(trace_with_total(static_cast<std::uint64_t>(total), total));
  }
  auto slowest = ring.slowest();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].total_ns, 99);
  EXPECT_EQ(slowest[1].total_ns, 70);
  EXPECT_EQ(slowest[2].total_ns, 50);
}

TEST(TraceRing, EvictsFastestWhenFull) {
  TraceRing ring(2);
  ring.offer(trace_with_total(1, 100));
  ring.offer(trace_with_total(2, 200));
  ring.offer(trace_with_total(3, 150));  // evicts 100
  ring.offer(trace_with_total(4, 50));   // rejected by the floor
  auto slowest = ring.slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].total_ns, 200);
  EXPECT_EQ(slowest[1].total_ns, 150);
}

TEST(TraceRing, CapacityZeroKeepsNothing) {
  TraceRing ring(0);
  ring.offer(trace_with_total(1, 100));
  EXPECT_TRUE(ring.slowest().empty());
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, CompleteFoldsStagesAndRing) {
  Tracer tracer(TracerConfig{true, 4});
  for (int i = 1; i <= 8; ++i) {
    BatchTrace t;
    t.batch_id = static_cast<std::uint64_t>(i);
    t.begin(10);  // 0 would mean "never begun"
    t.note(Stage::kRead, 10 + i * 100);
    t.note(Stage::kEncode, 10 + i * 100 + 50);
    tracer.complete(t);
  }
  EXPECT_EQ(tracer.e2e_histogram().count(), 8u);
  EXPECT_EQ(tracer.stage_histogram(Stage::kRead).count(), 8u);
  EXPECT_EQ(tracer.stage_histogram(Stage::kWire).count(), 0u);
  auto slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 4u);
  EXPECT_EQ(slowest[0].batch_id, 8u);  // slowest batch first

  auto rows = tracer.summaries();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back().stage, "e2e");
  EXPECT_EQ(rows.back().count, 8u);

  const json::Value ring_val = tracer.ring_json();
  const auto& ring = ring_val.as_object();
  EXPECT_EQ(ring.at("completed").as_int(), 8);
  EXPECT_EQ(ring.at("ring_capacity").as_int(), 4);
  EXPECT_EQ(ring.at("slowest").as_array().size(), 4u);
}

TEST(Tracer, InactiveTracesAreIgnored) {
  Tracer tracer(TracerConfig{true, 4});
  BatchTrace never_begun;
  tracer.complete(never_begun);
  EXPECT_EQ(tracer.e2e_histogram().count(), 0u);
  EXPECT_TRUE(tracer.summaries().empty());
}

// ------------------------------------------------------------ wire "t0"

TEST(TraceWire, DefaultEncodingIsByteIdentical) {
  msgpack::WireBatch plain;
  plain.epoch = 3;
  plain.batch_id = 9;
  auto baseline = msgpack::BatchCodec::encode(plain);

  msgpack::WireBatch traced = plain;  // trace_origin_ns stays 0
  auto same = msgpack::BatchCodec::encode(traced);
  ASSERT_EQ(same.size(), baseline.size());
  EXPECT_TRUE(std::equal(same.data(), same.data() + same.size(), baseline.data()));
}

TEST(TraceWire, OriginStampRoundTrips) {
  msgpack::WireBatch b;
  b.epoch = 3;
  b.batch_id = 9;
  b.trace_origin_ns = 123456789123ull;
  auto decoded = msgpack::BatchCodec::decode(msgpack::BatchCodec::encode(b));
  EXPECT_EQ(decoded.trace_origin_ns, 123456789123ull);
  EXPECT_EQ(decoded, b);
  // And the stamp costs wire bytes only when present.
  msgpack::WireBatch plain = b;
  plain.trace_origin_ns = 0;
  EXPECT_LT(msgpack::BatchCodec::encode(plain).size(),
            msgpack::BatchCodec::encode(b).size());
}

// ------------------------------------------------- bounded TimestampLogger

TEST(TimestampLoggerBounded, CapacityEvictsOldest) {
  ManualClock clock;
  TimestampLogger logger(clock, 3);
  for (int i = 0; i < 5; ++i) {
    clock.advance(10);
    logger.record("ev", i);
  }
  EXPECT_EQ(logger.size(), 3u);
  EXPECT_EQ(logger.dropped_events(), 2u);
  auto events = logger.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().detail, 2);  // 0 and 1 evicted
  EXPECT_EQ(events.back().detail, 4);
}

TEST(TimestampLoggerBounded, UnboundedByDefault) {
  ManualClock clock;
  TimestampLogger logger(clock);
  for (int i = 0; i < 100; ++i) logger.record("ev", i);
  EXPECT_EQ(logger.size(), 100u);
  EXPECT_EQ(logger.dropped_events(), 0u);
}

TEST(TimestampLoggerBounded, SpanHistogramPairsByDetail) {
  ManualClock clock;
  TimestampLogger logger(clock);
  // batch 1: 100ns, batch 2: 300ns, batch 3 never completes.
  logger.record("send", 1);
  clock.advance(100);
  logger.record("recv", 1);
  logger.record("send", 2);
  logger.record("send", 3);
  clock.advance(300);
  logger.record("recv", 2);
  auto snap = logger.span_histogram("send", "recv");
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 100u);
  EXPECT_EQ(snap.max, 300u);
  EXPECT_EQ(snap.quantile(1.0), 300.0);
  // Unmatched end events are skipped, not mispaired.
  EXPECT_EQ(logger.span_histogram("recv", "send").count, 0u);
}

// ------------------------------------------------------- service e2e

namespace fs = std::filesystem;

class TracedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("emlio_trace_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    spec_ = workload::presets::tiny(32, 600);
    workload::materialize_tfrecord(spec_, dir_.string(), 2);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  workload::DatasetSpec spec_;
};

TEST_F(TracedServiceTest, TracedRunProducesQuantilesAndForensics) {
  core::ServiceConfig cfg;
  cfg.dataset_dir = dir_.string();
  cfg.batch_size = 8;
  cfg.epochs = 1;
  cfg.decode_threads = 2;
  cfg.trace = true;
  cfg.trace_wire = true;
  cfg.trace_ring = 4;
  core::EmlioService service(cfg);
  service.start();
  std::size_t batches = 0;
  while (auto batch = service.next_batch()) {
    if (!batch->last) ++batches;
  }
  service.stop();
  ASSERT_EQ(batches, 4u);  // 32 samples / batch 8

  auto stats = service.stats();
  ASSERT_FALSE(stats.daemon.latency.empty());
  ASSERT_FALSE(stats.receiver.latency.empty());
  EXPECT_EQ(stats.daemon.latency.back().stage, "e2e");
  EXPECT_EQ(stats.daemon.latency.back().count, 4u);
  EXPECT_EQ(stats.receiver.latency.back().count, 4u);
  for (const auto& row : stats.receiver.latency) {
    EXPECT_GT(row.max_ns, 0.0) << row.stage;
    EXPECT_LE(row.p50_ns, row.p99_ns + 1.0) << row.stage;
  }

  // Forensics: every retained slow batch's per-stage breakdown sums to its
  // end-to-end latency exactly (the note-chain invariant).
  const json::Value rings[] = {service.daemon_trace_json(), service.receiver_trace_json()};
  for (const auto& ring : rings) {
    const auto& o = ring.as_object();
    EXPECT_EQ(o.at("completed").as_int(), 4);
    const auto& slowest = o.at("slowest").as_array();
    ASSERT_FALSE(slowest.empty());
    for (const auto& entry : slowest) {
      const auto& trace = entry.as_object();
      std::int64_t total = trace.at("total_ns").as_int();
      std::int64_t sum = 0;
      for (const auto& [stage, ns] : trace.at("stages").as_object()) {
        sum += ns.as_int();
      }
      EXPECT_EQ(sum, total);
      EXPECT_GT(total, 0);
    }
  }
  // trace_wire: the receiver's slowest batches carry a wire stage grafted
  // from the daemon's origin stamp.
  const json::Value rx_val = service.receiver_trace_json();
  const auto& rx = rx_val.as_object();
  bool saw_wire = false;
  for (const auto& entry : rx.at("slowest").as_array()) {
    const auto& stages = entry.as_object().at("stages").as_object();
    if (stages.count("wire")) saw_wire = true;
  }
  EXPECT_TRUE(saw_wire);
}

TEST_F(TracedServiceTest, UntracedRunReportsNoLatency) {
  core::ServiceConfig cfg;
  cfg.dataset_dir = dir_.string();
  cfg.batch_size = 8;
  cfg.epochs = 1;
  core::EmlioService service(cfg);
  service.start();
  while (auto batch = service.next_batch()) {
  }
  service.stop();
  auto stats = service.stats();
  EXPECT_TRUE(stats.daemon.latency.empty());
  EXPECT_TRUE(stats.receiver.latency.empty());
  const json::Value ring_val = service.daemon_trace_json();
  EXPECT_EQ(ring_val.as_object().at("completed").as_int(), 0);
}

}  // namespace
}  // namespace emlio::obs
